"""Quantized int8 inference: calibration, accuracy gates, serving contracts.

The int8 path is an *approximation* of the float model, so its tests pin
two different kinds of promise:

* **mechanism** — quantize/dequantize round trips bounded by scale/2,
  per-channel weight quantization, calibration determinism (synthetic
  frames are seeded, so shard/cluster replicas calibrate bit-identically),
  and loud failures for missing calibration or invalid configs;
* **accuracy gates** — across the full aggregator x pool zoo matrix the
  quantized logits stay within a loose tolerance of float64 and the
  predicted class agrees >= 99% of the time; batched int8 execution is
  bit-compatible with single-frame; sharded serving matches in-process
  serving because both calibrate on the same deterministic frames.

Float-path guarantees (1e-9 equivalence, snapshot pinning, batch purity)
must survive *alongside* int8 entries — the mixed-precision zoo tests at
the bottom re-pin them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import (Architecture, ArchitectureModel, ArchitectureZoo,
                        ZooEntry)
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.runtime import (PlanCalibration, PlanCompileError, amax_to_scale,
                           calibrate, compile_plan, quantize_weight,
                           synthetic_calibration_frames)
from repro.serving import (BatchingConfig, RuntimeConfig, ServingConfig,
                           ShardingConfig, build_callables,
                           build_zoo_callables, serve)
from repro.serving.sharding import sharding_supported

AGGREGATORS = ("add", "mean", "max")
POOLS = ("sum", "mean", "max", "max||mean")

#: Loose logit tolerance for int8 vs float64: quantization error scales with
#: activation magnitude (``add``/``sum`` entries emit logits in the tens), so
#: the gate is relative with a small absolute floor for near-zero logits.
INT8_LOGIT_ATOL = 0.05
INT8_LOGIT_RTOL = 0.05
#: Fraction of frames whose argmax must agree with the float64 model.
INT8_AGREEMENT = 0.99


def _assert_quant_close(logits, reference):
    """Bound the worst logit error by 5% of the logit *range* (plus a small
    absolute floor).  Per-tensor activation scales make quantization error
    proportional to the tensor's amax, not to each element's own magnitude,
    so an elementwise relative gate would be meaninglessly tight at zero
    crossings and meaninglessly loose at the extremes."""
    bound = INT8_LOGIT_ATOL + INT8_LOGIT_RTOL * np.max(np.abs(reference))
    error = np.max(np.abs(np.asarray(logits) - np.asarray(reference)))
    assert error <= bound, f"quantized logits off by {error} (bound {bound})"


def _arch(aggregator: str, pool: str) -> Architecture:
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=6),
        OpSpec(OpType.AGGREGATE, aggregator),
        OpSpec(OpType.COMBINE, 16),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=4),
        OpSpec(OpType.AGGREGATE, aggregator),
        OpSpec(OpType.GLOBAL_POOL, pool),
    ), name=f"{aggregator}-{pool}".replace("||", ""))


def _zoo(aggregators=AGGREGATORS, pools=POOLS) -> ArchitectureZoo:
    entries = []
    for aggregator in aggregators:
        for pool in pools:
            arch = _arch(aggregator, pool)
            entries.append(ZooEntry(arch.name, arch, 0.9, 10.0, 0.5))
    return ArchitectureZoo(entries)


def _point_cloud_frames(num_points: int = 32, count: int = 3):
    graphs = SyntheticModelNet40(num_points=num_points,
                                 samples_per_class=1,
                                 num_classes=max(count, 2),
                                 seed=0).generate()
    return [Batch.from_graphs([graphs[i % len(graphs)]])
            for i in range(count)]


def _model(aggregator: str = "max", pool: str = "max||mean"):
    return ArchitectureModel(_arch(aggregator, pool), in_dim=3,
                             num_classes=5, seed=0)


# ----------------------------------------------------------------------
# Quantization primitives
# ----------------------------------------------------------------------
class TestQuantizationPrimitives:
    def test_round_trip_error_bounded_by_half_scale(self):
        from repro.runtime.kernels import dequantize_array, quantize_array
        rng = np.random.default_rng(0)
        x = rng.uniform(-3.0, 3.0, size=(16, 8)).astype(np.float32)
        scale = amax_to_scale(3.0)
        xq = quantize_array(x.copy(), scale, x.copy(),
                            np.empty(x.shape, np.int8))
        back = dequantize_array(xq, scale, np.empty(x.shape, np.float32))
        assert np.max(np.abs(back - x)) <= scale / 2 + 1e-7

    def test_quantize_weight_per_channel(self):
        rng = np.random.default_rng(1)
        weight = rng.standard_normal((8, 5))
        weight[:, 2] *= 10.0  # one hot channel must not crush the others
        wq, scales = quantize_weight(weight)
        assert wq.dtype == np.int8 and scales.dtype == np.float32
        assert scales.shape == (5,)
        np.testing.assert_allclose(wq.astype(np.float32) * scales, weight,
                                   atol=np.max(scales) / 2 + 1e-6)
        # Per-channel property: every column uses its own full int8 range.
        assert np.abs(wq).max(axis=0).min() >= 126

    def test_quantize_weight_zero_column(self):
        weight = np.zeros((4, 3))
        weight[:, 0] = 1.0
        wq, scales = quantize_weight(weight)
        assert scales[1] == 1.0 and scales[2] == 1.0  # no division by zero
        assert np.all(wq[:, 1:] == 0)

    @pytest.mark.parametrize("amax", [0.0, -1.0, np.inf, np.nan])
    def test_amax_to_scale_degenerate_inputs(self, amax):
        assert amax_to_scale(amax) == 1.0

    def test_amax_to_scale_maps_amax_to_qmax(self):
        assert amax_to_scale(127.0) == pytest.approx(1.0)
        assert amax_to_scale(1.0) == pytest.approx(1.0 / 127.0)


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
class TestCalibration:
    def test_synthetic_frames_deterministic(self):
        a = synthetic_calibration_frames(3, num_frames=4, seed=0)
        b = synthetic_calibration_frames(3, num_frames=4, seed=0)
        assert len(a) == len(b) == 4
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa.x, fb.x)
        c = synthetic_calibration_frames(3, num_frames=4, seed=1)
        assert not np.array_equal(a[0].x, c[0].x)

    def test_calibration_deterministic(self):
        """Same model + frames => identical scales: the property replica
        consistency (shards, cluster nodes) rests on."""
        frames = synthetic_calibration_frames(3, seed=0)
        first = calibrate(_model(), frames)
        second = calibrate(_model(), frames)
        for name in ("full", "device", "edge"):
            rec_a, rec_b = first.segment(name), second.segment(name)
            assert rec_a.input_amax == rec_b.input_amax
            assert rec_a.step_amax == rec_b.step_amax
            assert rec_a.step_amax  # actually observed something

    def test_missing_segment_rejected(self):
        calibration = calibrate(_model(), synthetic_calibration_frames(3),
                                segments=("full",))
        with pytest.raises(ValueError, match="edge"):
            calibration.segment("edge")
        with pytest.raises(ValueError, match="device"):
            PlanCalibration().segment("device")

    def test_empty_frames_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            calibrate(_model(), [])

    def test_quantized_compile_requires_calibration_segments(self):
        calibration = calibrate(_model(), synthetic_calibration_frames(3),
                                segments=("device",))
        with pytest.raises(ValueError, match="edge"):
            compile_plan(_model(), segments=("device", "edge"),
                         calibration=calibration)


# ----------------------------------------------------------------------
# Accuracy gates: int8 vs float64 across the design-space matrix
# ----------------------------------------------------------------------
class TestInt8AccuracyGates:
    @pytest.mark.parametrize("aggregator", AGGREGATORS)
    @pytest.mark.parametrize("pool", POOLS)
    def test_full_plan_close_to_float64(self, aggregator, pool):
        model = ArchitectureModel(_arch(aggregator, pool), in_dim=3,
                                  num_classes=5, seed=0)
        calibration = calibrate(model, synthetic_calibration_frames(3,
                                                                    seed=0),
                                segments=("full",))
        plan = compile_plan(model, segments=("full",),
                            calibration=calibration)
        assert plan.precision == "int8"
        hits = total = 0
        for frame in _point_cloud_frames(count=4):
            with nn.no_grad():
                reference = model.forward(frame).data
            logits = plan(frame)
            assert logits.dtype == np.float32  # dequantized on exit
            _assert_quant_close(logits, reference)
            hits += int(np.argmax(logits) == np.argmax(reference))
            total += 1
        assert hits / total >= INT8_AGREEMENT

    def test_zoo_matrix_agreement_via_serving_builders(self):
        """precision="int8" through the facade: wire stays float32 and the
        predicted class agrees with eager float64 across every entry."""
        zoo = _zoo()
        quant = build_zoo_callables(
            zoo, in_dim=3, num_classes=5, seed=0,
            config=RuntimeConfig(runtime="compiled", precision="int8"))
        eager = build_zoo_callables(
            zoo, in_dim=3, num_classes=5, seed=0,
            config=RuntimeConfig(runtime="eager"))
        hits = total = 0
        for frame in _point_cloud_frames(count=3):
            for name in zoo.names():
                arrays_q, meta_q = quant[name].device_fn(frame)
                assert arrays_q["x"].dtype == np.float32  # wire contract
                logits_q = quant[name].edge_fn(arrays_q, meta_q)[0]["logits"]
                arrays_e, meta_e = eager[name].device_fn(frame)
                logits_e = eager[name].edge_fn(arrays_e, meta_e)[0]["logits"]
                _assert_quant_close(logits_q, logits_e)
                hits += int(np.argmax(logits_q) == np.argmax(logits_e))
                total += 1
        assert hits / total >= INT8_AGREEMENT

    def test_batched_matches_single_frame(self):
        """Uniform int8 batches reuse the same static scales as single
        frames, so batching must be numerically inert (<= 1e-5)."""
        zoo = _zoo(aggregators=("max", "add"), pools=("max||mean",))
        callables = build_zoo_callables(
            zoo, in_dim=3, num_classes=5, seed=0,
            config=RuntimeConfig(runtime="compiled", precision="int8"))
        frames = _point_cloud_frames(count=4)
        for name in zoo.names():
            entry = callables[name]
            requests = [entry.device_fn(frame) for frame in frames]
            singles = [entry.edge_fn(arrays, meta)[0]["logits"]
                       for arrays, meta in requests]
            batched = entry.batch_fn(requests)
            assert len(batched) == len(frames)
            for (arrays, _), single in zip(batched, singles):
                np.testing.assert_allclose(arrays["logits"], single,
                                           rtol=0, atol=1e-5)


# ----------------------------------------------------------------------
# RuntimeConfig: precision knobs
# ----------------------------------------------------------------------
class TestPrecisionConfig:
    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            RuntimeConfig(precision="int4")
        with pytest.raises(ValueError, match="precision"):
            RuntimeConfig(precision_policy={"m": "bfloat16"})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RuntimeConfig(backend="cuda")

    def test_eager_runtime_rejects_int8(self):
        with pytest.raises(ValueError, match="eager"):
            RuntimeConfig(runtime="eager", precision="int8")
        with pytest.raises(ValueError, match="eager"):
            RuntimeConfig(runtime="eager", precision_policy={"m": "int8"})

    def test_conflicting_dtype_and_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            RuntimeConfig(dtype="float64", precision="float32")
        # Agreeing spellings are fine.
        config = RuntimeConfig(dtype="float32", precision="float32")
        assert config.precision_for() == "float32"

    def test_precision_for_resolution_order(self):
        config = RuntimeConfig(precision="float32",
                               precision_policy={"hot": "int8"})
        assert config.precision_for("hot") == "int8"
        assert config.precision_for("cold") == "float32"
        assert config.precision_for() == "float32"
        assert RuntimeConfig().precision_for("anything") == "float64"
        assert RuntimeConfig(dtype="float32").precision_for() == "float32"

    def test_round_trip_with_policy(self):
        config = RuntimeConfig(runtime="compiled", precision="float32",
                               precision_policy={"hot": "int8"},
                               backend="numpy")
        rebuilt = RuntimeConfig.from_dict(config.to_dict())
        assert rebuilt == config
        serving = ServingConfig(runtime=config)
        assert ServingConfig.from_dict(serving.to_dict()) == serving

    def test_int8_plus_compile_error_raises_under_auto(self):
        """runtime="auto" may fall back to eager — but eager cannot run
        int8, so a non-compilable int8 entry must fail loudly, while a
        policy exempting it to float64 falls back fine."""
        model = _model()
        model.classifier.mlp = nn.MLP([64, 8, 5], batch_norm=True)
        config = RuntimeConfig(runtime="auto", precision="int8",
                               precision_policy={"legacy": "float64"})
        with pytest.raises(PlanCompileError):
            build_callables(model, config, entry_name="hot")
        callables = build_callables(model, config, entry_name="legacy")
        frame = _point_cloud_frames(count=1)[0]
        arrays, meta = callables.device_fn(frame)
        logits, _ = callables.edge_fn(arrays, meta)
        assert logits["logits"].shape == (1, 5)


# ----------------------------------------------------------------------
# Mixed-precision zoo serving: float guarantees survive int8 neighbours
# ----------------------------------------------------------------------
class TestMixedPrecisionServing:
    ZOO = ArchitectureZoo([
        ZooEntry("hot", _arch("max", "max||mean"), 0.9, 10.0, 0.5),
        ZooEntry("exact", _arch("mean", "mean"), 0.9, 10.0, 0.5),
    ])
    CONFIG = ServingConfig(
        runtime=RuntimeConfig(precision_policy={"hot": "int8"}),
        batching=BatchingConfig(max_batch_size=4, max_wait_ms=2.0))

    def _references(self, frames):
        out = {}
        for name in self.ZOO.names():
            model = ArchitectureModel(self.ZOO.get(name).architecture,
                                      in_dim=3, num_classes=3, seed=0)
            with nn.no_grad():
                out[name] = [model.forward(frame).data for frame in frames]
        return out

    def test_float_entry_stays_exact_next_to_int8_entry(self):
        frames = _point_cloud_frames(num_points=24, count=4)
        references = self._references(frames)
        with serve(self.ZOO, self.CONFIG, in_dim=3, num_classes=3) as app:
            for name in self.ZOO.names():
                with app.client(model=name) as client:
                    results, _ = client.run(frames)
                for result, reference in zip(results, references[name]):
                    logits = result.arrays["logits"]
                    if name == "exact":  # float64 guarantee is unchanged
                        np.testing.assert_allclose(logits, reference,
                                                   rtol=0, atol=1e-9)
                    else:
                        _assert_quant_close(logits, reference)
                        assert np.argmax(logits) == np.argmax(reference)

    @pytest.mark.skipif(not sharding_supported("shm"),
                        reason="platform lacks multiprocessing.shared_memory")
    def test_sharded_int8_matches_in_process(self):
        """Shards rebuild entries from the config; deterministic synthetic
        calibration makes replica scales bit-identical, so sharded int8
        logits equal in-process int8 logits."""
        frames = _point_cloud_frames(num_points=24, count=3)
        sharded_config = ServingConfig(
            runtime=self.CONFIG.runtime,
            sharding=ShardingConfig(num_shards=2))
        outputs = {}
        for label, config in (("inproc", self.CONFIG),
                              ("sharded", sharded_config)):
            with serve(self.ZOO, config, in_dim=3, num_classes=3) as app:
                if label == "sharded":
                    assert app.sharded and app.shard_pool.live_count() == 2
                with app.client(model="hot") as client:
                    results, _ = client.run(frames)
                outputs[label] = [r.arrays["logits"] for r in results]
        for got, expected in zip(outputs["sharded"], outputs["inproc"]):
            np.testing.assert_allclose(got, expected, rtol=0, atol=1e-6)
