"""Compiled inference plans: eager equivalence, arenas, canonicalization.

The compiled runtime must be a pure performance transformation: for every
architecture the serving layer can express, a compiled plan must produce the
same numbers as eager execution (within float64 round-off — the plan may
legally reorder within-segment summation), reuse its buffers across frames
without ever leaking one frame's results into another, and fall back to
eager execution when a model contains something it cannot compile.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import (Architecture, ArchitectureModel, ArchitectureZoo,
                        ZooEntry, batched_edge_fn, split_callables)
from repro.serving import RuntimeConfig, build_zoo_callables
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40, SyntheticMR
from repro.graph.data import Batch
from repro.runtime import (BufferArena, InferencePlan, PlanCompileError,
                           SegmentInfo, canonical_edge_order, compile_plan)

#: Equivalence bound for float64 plans: the compiled runtime may reorder
#: within-segment summation (reshape reductions, unsorted-edge
#: canonicalization), which perturbs results by a few ulps, never more.
F64_TOL = 1e-9
#: float32 plans compute everything in single precision.
F32_TOL = 1e-3

AGGREGATORS = ("add", "mean", "max")
POOLS = ("sum", "mean", "max", "max||mean")


def _point_cloud_frames(num_points=32, count=3):
    graphs = SyntheticModelNet40(num_points=num_points, samples_per_class=1,
                                 num_classes=max(count, 2), seed=0).generate()
    return [Batch.from_graphs([graph]) for graph in graphs[:count]]


def _arch(aggregator: str, pool: str) -> Architecture:
    """Split architecture exercising one aggregator/pool combination."""
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=6),
        OpSpec(OpType.AGGREGATE, aggregator),
        OpSpec(OpType.COMBINE, 16),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=4),
        OpSpec(OpType.AGGREGATE, aggregator),
        OpSpec(OpType.GLOBAL_POOL, pool),
    ), name=f"{aggregator}-{pool}")


def _zoo() -> ArchitectureZoo:
    """One zoo entry per aggregator/pool combination."""
    entries = []
    for aggregator in AGGREGATORS:
        for pool in POOLS:
            arch = _arch(aggregator, pool)
            entries.append(ZooEntry(arch.name, arch, 0.9, 10.0, 0.5))
    return ArchitectureZoo(entries)


class TestCompiledEagerEquivalence:
    @pytest.mark.parametrize("aggregator", AGGREGATORS)
    @pytest.mark.parametrize("pool", POOLS)
    def test_full_forward_matches_eager(self, aggregator, pool):
        model = ArchitectureModel(_arch(aggregator, pool), in_dim=3,
                                  num_classes=5, seed=0)
        plan = compile_plan(model)
        batch = Batch.from_graphs(
            SyntheticModelNet40(num_points=32, samples_per_class=1,
                                num_classes=3, seed=1).generate()[:3])
        with nn.no_grad():
            eager = model.forward(batch).data
        np.testing.assert_allclose(plan(batch), eager, atol=F64_TOL, rtol=0)

    def test_every_zoo_entry_single_frame(self):
        """Compiled device+edge callables match eager ones for all entries."""
        zoo = _zoo()
        compiled = build_zoo_callables(zoo, in_dim=3, num_classes=5, seed=0,
                                       config=RuntimeConfig(runtime="compiled"))
        eager = build_zoo_callables(zoo, in_dim=3, num_classes=5, seed=0,
                                    config=RuntimeConfig(runtime="eager"))
        for frame in _point_cloud_frames():
            for name in zoo.names():
                arrays_c, meta_c = compiled[name].device_fn(frame)
                arrays_e, meta_e = eager[name].device_fn(frame)
                np.testing.assert_allclose(arrays_c["x"], arrays_e["x"],
                                           atol=F64_TOL, rtol=0)
                logits_c = compiled[name].edge_fn(arrays_c, meta_c)[0]["logits"]
                logits_e = eager[name].edge_fn(arrays_e, meta_e)[0]["logits"]
                np.testing.assert_allclose(logits_c, logits_e,
                                           atol=F64_TOL, rtol=0)

    def test_every_zoo_entry_batched(self):
        """Compiled batched edge calls match eager batched calls per entry."""
        zoo = _zoo()
        frames = _point_cloud_frames(count=4)
        for name, entry in zoo.items():
            model = ArchitectureModel(entry.architecture, in_dim=3,
                                      num_classes=5, seed=0)
            device_fn, _ = split_callables(model, runtime="eager")
            requests = [device_fn(frame) for frame in frames]
            compiled = batched_edge_fn(model, runtime="compiled")(requests)
            eager = batched_edge_fn(model, runtime="eager")(requests)
            assert len(compiled) == len(eager) == len(frames)
            for (arrays_c, meta_c), (arrays_e, meta_e) in zip(compiled, eager):
                assert meta_c["num_graphs"] == meta_e["num_graphs"]
                np.testing.assert_allclose(arrays_c["logits"],
                                           arrays_e["logits"],
                                           atol=F64_TOL, rtol=0)

    def test_batched_matches_per_frame_compiled(self):
        """One compiled batched call == compiled per-frame calls."""
        model = ArchitectureModel(_arch("max", "max||mean"), in_dim=3,
                                  num_classes=5, seed=0)
        frames = _point_cloud_frames(count=4)
        device_fn, edge_fn = split_callables(model, runtime="compiled")
        requests = [device_fn(frame) for frame in frames]
        batched = batched_edge_fn(model, runtime="compiled")(requests)
        for request, (arrays_b, _) in zip(requests, batched):
            arrays_s, _ = edge_fn(*request)
            np.testing.assert_allclose(arrays_b["logits"], arrays_s["logits"],
                                       atol=F64_TOL, rtol=0)

    def test_device_only_architecture(self):
        """No Communicate: device runs everything, edge echoes (compiled)."""
        arch = Architecture(ops=(
            OpSpec(OpType.SAMPLE, "knn", k=4),
            OpSpec(OpType.AGGREGATE, "mean"),
            OpSpec(OpType.GLOBAL_POOL, "mean"),
        ), name="device-only")
        model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        frame = _point_cloud_frames(count=1)[0]
        arrays_c, meta_c = split_callables(model, runtime="compiled")[0](frame)
        arrays_e, meta_e = split_callables(model, runtime="eager")[0](frame)
        assert meta_c["finished"] and meta_e["finished"]
        np.testing.assert_allclose(arrays_c["x"], arrays_e["x"],
                                   atol=F64_TOL, rtol=0)
        _, edge_fn = split_callables(model, runtime="compiled")
        echoed, _ = edge_fn(arrays_c, meta_c)
        np.testing.assert_array_equal(echoed["logits"], arrays_c["x"])

    def test_random_sampling_matches_eager_frame_for_frame(self):
        """Compiled random sampling draws the same stream as eager.

        Plans share the eager op's generator object (no private snapshot),
        so two same-seeded models — one run eager, one compiled — consume
        identical draw sequences and produce identical topologies.
        """
        arch = Architecture(ops=(
            OpSpec(OpType.SAMPLE, "random", k=3),
            OpSpec(OpType.AGGREGATE, "mean"),
            OpSpec(OpType.COMBINE, 16),
            OpSpec(OpType.GLOBAL_POOL, "mean"),
        ), name="random")
        eager_model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        compiled_model = ArchitectureModel(arch, in_dim=3, num_classes=5,
                                           seed=0)
        plan = compile_plan(compiled_model)
        frames = _point_cloud_frames(count=3)
        with nn.no_grad():
            for frame in frames:  # same draw sequence on both sides
                eager = eager_model.forward(frame).data
                np.testing.assert_allclose(plan(frame), eager,
                                           atol=F64_TOL, rtol=0)

    def test_random_sampling_plans_share_the_eager_generator(self):
        """Per-frame and batched plans of one model share one draw stream
        (mirroring eager serving), instead of replaying identical
        'random' topologies in lockstep from independent snapshots."""
        arch = Architecture(ops=(
            OpSpec(OpType.COMMUNICATE, "uplink"),
            OpSpec(OpType.SAMPLE, "random", k=3),
            OpSpec(OpType.AGGREGATE, "mean"),
            OpSpec(OpType.GLOBAL_POOL, "mean"),
        ), name="random-edge")
        model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        device_fn, edge_fn = split_callables(model, runtime="compiled")
        batch_fn = batched_edge_fn(model, runtime="compiled")
        frame = _point_cloud_frames(count=1)[0]
        state = device_fn(frame)
        per_frame = edge_fn(*state)[0]["logits"]
        batched = batch_fn([state])  # single-frame batch: real execution
        # Different draws (one shared stream), so topologies — and almost
        # surely logits — differ between the two consecutive calls.
        assert not np.array_equal(per_frame, batched[0][0]["logits"])

    def test_text_graphs_with_preexisting_edges(self):
        """MR-style graphs: no positions, wire edges, no Sample op."""
        arch = Architecture(ops=(
            OpSpec(OpType.AGGREGATE, "mean"),
            OpSpec(OpType.COMBINE, 16),
            OpSpec(OpType.COMMUNICATE, "uplink"),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.GLOBAL_POOL, "max"),
        ), name="text")
        graphs = SyntheticMR(num_documents=6, feature_dim=16, mean_nodes=10,
                             seed=0).generate()
        model = ArchitectureModel(arch, in_dim=16, num_classes=2, seed=0)
        for graph in graphs[:3]:
            frame = Batch.from_graphs([graph])
            d_c, e_c = split_callables(model, runtime="compiled")
            d_e, e_e = split_callables(model, runtime="eager")
            state_c = d_c(frame)
            state_e = d_e(frame)
            np.testing.assert_allclose(e_c(*state_c)[0]["logits"],
                                       e_e(*state_e)[0]["logits"],
                                       atol=F64_TOL, rtol=0)

    def test_unsorted_wire_edges_are_canonicalized(self):
        """A shuffled edge list off the wire still matches eager results."""
        arch = Architecture(ops=(
            OpSpec(OpType.COMMUNICATE, "uplink"),
            OpSpec(OpType.AGGREGATE, "add"),
            OpSpec(OpType.GLOBAL_POOL, "mean"),
        ), name="wire-edges")
        model = ArchitectureModel(arch, in_dim=4, num_classes=3, seed=0)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((10, 4))
        edges = np.stack([rng.integers(0, 10, 30),
                          rng.integers(0, 10, 30)])  # unsorted destinations
        arrays = {"x": x, "batch": np.zeros(10, dtype=np.int64),
                  "edge_index": edges}
        meta = {"num_graphs": 1, "pooled": False, "finished": False}
        _, edge_c = split_callables(model, runtime="compiled")
        _, edge_e = split_callables(model, runtime="eager")
        np.testing.assert_allclose(edge_c(dict(arrays), dict(meta))[0]["logits"],
                                   edge_e(dict(arrays), dict(meta))[0]["logits"],
                                   atol=F64_TOL, rtol=0)

    def test_load_state_dict_after_compile_is_honored(self):
        """Plans resolve weights at call time, not at compile time."""
        model_a = ArchitectureModel(_arch("max", "mean"), in_dim=3,
                                    num_classes=5, seed=0)
        model_b = ArchitectureModel(_arch("max", "mean"), in_dim=3,
                                    num_classes=5, seed=7)
        plan = compile_plan(model_a)
        frame = _point_cloud_frames(count=1)[0]
        before = plan(frame)
        model_a.load_state_dict(model_b.state_dict())
        with nn.no_grad():
            expected = model_b.forward(frame).data
        np.testing.assert_allclose(plan(frame), expected, atol=F64_TOL, rtol=0)
        assert not np.allclose(before, expected)


class TestFloat32Plans:
    def test_float32_within_tolerance_of_eager_float64(self):
        model = ArchitectureModel(_arch("max", "max||mean"), in_dim=3,
                                  num_classes=5, seed=0)
        frame = _point_cloud_frames(count=1)[0]
        d32, e32 = split_callables(model, runtime="compiled",
                                   dtype=np.float32)
        d64, e64 = split_callables(model, runtime="eager")
        arrays32, meta32 = d32(frame)
        assert arrays32["x"].dtype == np.float32  # float32 hits the wire
        logits32 = e32(arrays32, meta32)[0]["logits"]
        assert logits32.dtype == np.float32
        logits64 = e64(*d64(frame))[0]["logits"]
        np.testing.assert_allclose(logits32, logits64, atol=F32_TOL, rtol=0)

    def test_float32_batched(self):
        model = ArchitectureModel(_arch("mean", "mean"), in_dim=3,
                                  num_classes=5, seed=0)
        frames = _point_cloud_frames(count=3)
        d32, _ = split_callables(model, runtime="compiled", dtype=np.float32)
        requests = [d32(frame) for frame in frames]
        batched = batched_edge_fn(model, runtime="compiled",
                                  dtype=np.float32)(requests)
        d64, e64 = split_callables(model, runtime="eager")
        for frame, (arrays_b, _) in zip(frames, batched):
            logits64 = e64(*d64(frame))[0]["logits"]
            np.testing.assert_allclose(arrays_b["logits"], logits64,
                                       atol=F32_TOL, rtol=0)

    def test_eager_runtime_rejects_non_float64(self):
        model = ArchitectureModel(_arch("max", "mean"), in_dim=3,
                                  num_classes=5, seed=0)
        with pytest.raises(ValueError, match="float64"):
            split_callables(model, runtime="eager", dtype=np.float32)

    def test_non_float_dtype_rejected(self):
        model = ArchitectureModel(_arch("max", "mean"), in_dim=3,
                                  num_classes=5, seed=0)
        with pytest.raises(ValueError, match="floating"):
            split_callables(model, runtime="compiled", dtype=np.int64)


class TestBufferArena:
    def test_steady_state_stops_allocating(self):
        """Fixed frame shapes: the arena allocates once, then only reuses."""
        model = ArchitectureModel(_arch("max", "max||mean"), in_dim=3,
                                  num_classes=5, seed=0)
        plan = compile_plan(model)
        frames = _point_cloud_frames(count=3)
        plan(frames[0])
        allocations_after_warmup = plan.full.arena.allocations
        for frame in frames * 3:
            plan(frame)
        assert plan.full.arena.allocations == allocations_after_warmup
        assert plan.full.arena.hits > 0

    def test_shape_change_reallocates_then_stabilizes(self):
        model = ArchitectureModel(_arch("mean", "mean"), in_dim=3,
                                  num_classes=5, seed=0)
        plan = compile_plan(model)
        small = _point_cloud_frames(num_points=16, count=1)[0]
        large = _point_cloud_frames(num_points=32, count=1)[0]
        plan(small)
        after_small = plan.full.arena.allocations
        plan(large)
        assert plan.full.arena.allocations > after_small  # new shapes
        after_large = plan.full.arena.allocations
        plan(large)
        assert plan.full.arena.allocations == after_large  # stabilized

    def test_no_cross_frame_result_aliasing(self):
        """Results must be detached from the arena: frame B never mutates
        the logits frame A already returned — the serving engine may still
        be serializing A while B executes."""
        model = ArchitectureModel(_arch("max", "max||mean"), in_dim=3,
                                  num_classes=5, seed=0)
        device_fn, edge_fn = split_callables(model, runtime="compiled")
        frame_a, frame_b = _point_cloud_frames(count=2)
        state_a = device_fn(frame_a)
        logits_a, _ = edge_fn(*state_a)
        snapshot = logits_a["logits"].copy()
        # Run a different frame through the same plan (same arena).
        edge_fn(*device_fn(frame_b))
        np.testing.assert_array_equal(logits_a["logits"], snapshot)

    def test_no_cross_frame_wire_state_aliasing(self):
        """Device-side wire arrays survive the next device call too."""
        model = ArchitectureModel(_arch("mean", "mean"), in_dim=3,
                                  num_classes=5, seed=0)
        device_fn, _ = split_callables(model, runtime="compiled")
        frame_a, frame_b = _point_cloud_frames(count=2)
        arrays_a, _ = device_fn(frame_a)
        snapshots = {name: array.copy() for name, array in arrays_a.items()}
        device_fn(frame_b)
        for name, snapshot in snapshots.items():
            np.testing.assert_array_equal(arrays_a[name], snapshot)

    def test_concurrent_executions_do_not_corrupt_results(self):
        """Arenas are per thread: un-locked concurrent edge calls (e.g. a
        plain ``EdgeServer(edge_fn)`` with several handler threads) must
        produce the same logits as serial execution."""
        import threading
        model = ArchitectureModel(_arch("max", "max||mean"), in_dim=3,
                                  num_classes=5, seed=0)
        device_fn, edge_fn = split_callables(model, runtime="compiled")
        frames = _point_cloud_frames(count=4)
        states = [device_fn(frame) for frame in frames]
        expected = [edge_fn(*state)[0]["logits"].copy() for state in states]
        failures = []

        def worker(index):
            state = states[index % len(states)]
            for _ in range(50):
                logits = edge_fn(*state)[0]["logits"]
                if not np.array_equal(logits, expected[index % len(states)]):
                    failures.append(index)
                    return
        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_take_reuses_matching_buffer(self):
        arena = BufferArena()
        first = arena.take("slot", (4, 8), np.float64)
        again = arena.take("slot", (4, 8), np.float64)
        assert first is again
        assert arena.allocations == 1 and arena.hits == 1
        other = arena.take("slot", (4, 8), np.float32)  # dtype change
        assert other is not first
        assert arena.allocations == 2


class TestPlanStructure:
    def test_identity_and_communicate_compile_to_nothing(self):
        arch = Architecture(ops=(
            OpSpec(OpType.IDENTITY, "skip"),
            OpSpec(OpType.SAMPLE, "knn", k=4),
            OpSpec(OpType.IDENTITY, "skip"),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.GLOBAL_POOL, "mean"),
        ), name="with-identities")
        model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        plan = compile_plan(model)
        # sample + aggregate + pool + defensive-pool + 2 classifier linears
        names = [type(step).__name__ for step in plan.full.steps]
        assert "_SampleStep" in names and "_AggregateStep" in names
        assert not any("Identity" in name or "Communicate" in name
                       for name in names)

    def test_knn_topology_cached_within_frame(self):
        """Consecutive kNN samples over unchanged positions share a topology."""
        arch = Architecture(ops=(
            OpSpec(OpType.SAMPLE, "knn", k=4),
            OpSpec(OpType.IDENTITY, "skip"),
            OpSpec(OpType.SAMPLE, "knn", k=4),   # positions unchanged: cached
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.SAMPLE, "knn", k=6),   # different k: recomputed
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.GLOBAL_POOL, "mean"),
        ), name="cached-knn")
        model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        plan = compile_plan(model)
        frame = _point_cloud_frames(count=1)[0]
        run = plan.full.execute(frame.x, frame.batch, frame.num_graphs,
                                edge_index=frame.edge_index, pos=frame.pos)
        # Three Sample steps, but only two distinct topologies computed.
        assert len(run.topo_cache) == 2
        with nn.no_grad():
            eager = model.forward(frame).data
        np.testing.assert_allclose(plan(frame), eager, atol=F64_TOL, rtol=0)

    def test_feature_knn_not_shared_across_feature_updates(self):
        """A kNN over features recomputes once the features changed."""
        arch = Architecture(ops=(
            OpSpec(OpType.AGGREGATE, "mean"),     # uses pre-existing edges
            OpSpec(OpType.COMBINE, 16),
            OpSpec(OpType.COMMUNICATE, "uplink"),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.GLOBAL_POOL, "max"),
        ), name="no-pos")
        graphs = SyntheticMR(num_documents=2, feature_dim=16, mean_nodes=10,
                             seed=0).generate()
        model = ArchitectureModel(arch, in_dim=16, num_classes=2, seed=0)
        plan = compile_plan(model)
        frame = Batch.from_graphs([graphs[0]])
        with nn.no_grad():
            eager = model.forward(frame).data
        np.testing.assert_allclose(plan(frame), eager, atol=F64_TOL, rtol=0)

    def test_compile_error_falls_back_to_eager_under_auto(self):
        model = ArchitectureModel(_arch("max", "mean"), in_dim=3,
                                  num_classes=5, seed=0)
        # Replace the classifier MLP with one the compiler cannot fuse.
        model.classifier.mlp = nn.MLP([32, 8, 5], batch_norm=True)
        with pytest.raises(PlanCompileError):
            split_callables(model, runtime="compiled")
        device_fn, edge_fn = split_callables(model, runtime="auto")  # eager
        frame = _point_cloud_frames(count=1)[0]
        arrays, meta = device_fn(frame)
        logits, _ = edge_fn(arrays, meta)
        assert logits["logits"].shape == (1, 5)

    def test_active_dropout_refuses_to_compile(self):
        """Eager would apply per-frame random masks; compiled must not
        silently skip them — eval-mode (or p=0) dropout compiles fine."""
        model = ArchitectureModel(_arch("max", "mean"), in_dim=3,
                                  num_classes=5, seed=0)
        model.classifier.mlp = nn.MLP([32, 8, 5], dropout=0.5)
        with pytest.raises(PlanCompileError, match="Dropout"):
            compile_plan(model)
        model.classifier.mlp.eval()
        plan = compile_plan(model)  # inactive dropout compiles away
        frame = _point_cloud_frames(count=1)[0]
        with nn.no_grad():
            eager = model.forward(frame).data
        np.testing.assert_allclose(plan(frame), eager, atol=F64_TOL, rtol=0)

    def test_segment_restricted_compilation(self):
        """Callers compile only the segments they run (no dead step lists)."""
        model = ArchitectureModel(_arch("max", "mean"), in_dim=3,
                                  num_classes=5, seed=0)
        edge_only = compile_plan(model, segments=("edge",))
        assert edge_only.edge is not None
        assert edge_only.device is None and edge_only.full is None
        with pytest.raises(RuntimeError, match="'full' segment"):
            edge_only(_point_cloud_frames(count=1)[0])
        with pytest.raises(ValueError, match="unknown plan segments"):
            compile_plan(model, segments=("edge", "gpu"))

    def test_device_only_segments_alias_full(self):
        arch = Architecture(ops=(
            OpSpec(OpType.SAMPLE, "knn", k=4),
            OpSpec(OpType.AGGREGATE, "mean"),
            OpSpec(OpType.GLOBAL_POOL, "mean"),
        ), name="device-only")
        model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        plan = compile_plan(model, segments=("device",))
        assert plan.device is plan.full is plan.edge

    def test_unknown_runtime_rejected(self):
        model = ArchitectureModel(_arch("max", "mean"), in_dim=3,
                                  num_classes=5, seed=0)
        with pytest.raises(ValueError, match="unknown runtime"):
            split_callables(model, runtime="jit")


class TestSegmentInfo:
    def test_canonical_edge_order_sorts_unsorted_lists(self):
        edges = np.array([[0, 1, 2, 3], [3, 1, 2, 0]])
        ordered, info = canonical_edge_order(edges, 4)
        assert info.is_sorted
        np.testing.assert_array_equal(ordered[1], [0, 1, 2, 3])
        np.testing.assert_array_equal(ordered[0], [3, 1, 2, 0])

    def test_canonical_edge_order_passes_sorted_through(self):
        edges = np.stack([np.arange(8), np.repeat(np.arange(4), 2)])
        ordered, info = canonical_edge_order(edges, 4)
        assert ordered is edges
        assert info.is_sorted and info.uniform_k == 2

    def test_uniform_info_matches_scan(self):
        index = np.repeat(np.arange(5), 3)
        fast = SegmentInfo.uniform(5, 3)
        scanned = SegmentInfo.from_index(index, 5)
        np.testing.assert_array_equal(fast.starts, scanned.starts)
        np.testing.assert_array_equal(fast.counts, scanned.counts)
        assert fast.uniform_k == scanned.uniform_k == 3


class TestArenaRelease:
    """Explicit arena teardown: retired plans must not retain buffers.

    Regression tests for the per-thread arena retention fix: arenas are
    keyed by executing thread, so without an explicit release hook a
    long-lived plan keeps one buffer set pooled per thread that ever
    executed it — and a retired serving snapshot would hold them until the
    threads die.
    """

    def _plan_and_frame(self):
        model = ArchitectureModel(_arch("max", "max||mean"), in_dim=3,
                                  num_classes=4, seed=0)
        plan = compile_plan(model)
        return plan, _point_cloud_frames(count=1)[0]

    def test_release_buffers_frees_and_stays_usable(self):
        plan, frame = self._plan_and_frame()
        before = plan(frame)
        assert plan.arena_nbytes() > 0
        freed = plan.release_buffers()
        assert freed > 0
        assert plan.arena_nbytes() == 0
        # The plan still works (buffers reallocate) and stays equivalent.
        np.testing.assert_allclose(plan(frame), before, atol=F64_TOL)

    def test_worker_thread_arenas_are_enumerable_and_releasable(self):
        import threading
        plan, frame = self._plan_and_frame()
        plan(frame)  # main-thread arena

        def worker():
            plan(frame)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        # While the threads lived they each had an arena; release drops
        # whatever is still reachable in one call.
        assert plan.release_buffers() >= 0
        assert plan.arena_nbytes() == 0

    def test_dead_thread_arena_is_not_retained_by_the_registry(self):
        """The registry must hold weak refs: a thread exiting frees its
        arena instead of parking it in the segment forever."""
        import gc
        import threading
        import weakref
        plan, frame = self._plan_and_frame()
        captured = []

        def worker():
            plan(frame)
            captured.append(weakref.ref(plan.full.arena))

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=30.0)
        gc.collect()
        assert captured and captured[0]() is None, (
            "a dead worker thread's arena is still strongly referenced — "
            "the per-thread arena retention leak is back")
        assert all(arena is not None for arena in plan.full.arenas())

    def test_serving_callables_release(self):
        zoo = ArchitectureZoo([ZooEntry("m", _arch("max", "mean"),
                                        0.9, 10.0, 0.5)])
        serving = build_zoo_callables(zoo, in_dim=3, num_classes=4)["m"]
        assert serving.plans  # compiled runtime: plans are exposed
        frame = _point_cloud_frames(count=1)[0]
        arrays, meta = serving.device_fn(frame)
        serving.edge_fn(arrays, meta)
        assert serving.arena_nbytes() > 0
        assert serving.release_buffers() > 0
        assert serving.arena_nbytes() == 0

    def test_retired_snapshot_releases_its_buffers(self):
        """Publishing past the retain window frees the evicted snapshot's
        pooled arena buffers immediately."""
        from repro.serving import ModelRepository
        zoo = ArchitectureZoo([ZooEntry("m", _arch("max", "mean"),
                                        0.9, 10.0, 0.5)])
        repo = ModelRepository(in_dim=3, num_classes=4, retain=1, zoo=zoo)
        first = repo.snapshot()
        frame = _point_cloud_frames(count=1)[0]
        arrays, meta = repo.device_fn("m")(frame)
        repo.edge_fns()["m"](arrays, meta)
        pooled = sum(serving.arena_nbytes()
                     for serving in first.callables.values())
        assert pooled > 0
        repo.publish(zoo)  # retain=1: evicts (and must release) v1
        assert sum(serving.arena_nbytes()
                   for serving in first.callables.values()) == 0
