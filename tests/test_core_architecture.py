"""Tests for the architecture representation, mapping derivation and validity rules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Architecture, check_validity, is_valid
from repro.core.design_space import DesignSpace
from repro.gnn import OpSpec, OpType
from repro.hardware import DataProfile


def arch(*ops) -> Architecture:
    return Architecture(ops=tuple(ops))


SAMPLE = OpSpec(OpType.SAMPLE, "knn", k=4)
AGG = OpSpec(OpType.AGGREGATE, "max")
COMBINE = OpSpec(OpType.COMBINE, 32)
POOL = OpSpec(OpType.GLOBAL_POOL, "mean")
COMM = OpSpec(OpType.COMMUNICATE, "uplink")
IDENTITY = OpSpec(OpType.IDENTITY, "skip")


class TestMapping:
    def test_no_communicate_means_device_only(self):
        a = arch(SAMPLE, AGG, COMBINE, POOL)
        assert a.mapping() == ["device"] * 4
        assert not a.is_co_inference
        assert a.final_side() == "device"

    def test_single_communicate_splits_device_edge(self):
        a = arch(SAMPLE, AGG, COMM, COMBINE, POOL)
        assert a.mapping() == ["device", "device", "device", "edge", "edge"]
        assert a.final_side() == "edge"
        assert len(a.device_ops()) == 3 and len(a.edge_ops()) == 2

    def test_two_communicates_return_to_device(self):
        a = arch(SAMPLE, COMM, AGG, COMBINE, COMM, POOL)
        assert a.final_side() == "device"
        assert a.num_communicates == 2

    def test_partition_segments_exclude_communicates(self):
        a = arch(SAMPLE, AGG, COMM, COMBINE, POOL)
        segments = a.partition_segments()
        assert [side for side, _ in segments] == ["device", "edge"]
        assert [len(ops) for _, ops in segments] == [2, 2]

    def test_leading_communicate_is_edge_only_style(self):
        a = arch(COMM, SAMPLE, AGG, COMBINE, POOL)
        assert a.device_ops() == [COMM]
        assert len(a.edge_ops()) == 4


class TestFeatureDims:
    def test_dims_follow_operation_semantics(self):
        a = arch(SAMPLE, AGG, COMBINE, OpSpec(OpType.GLOBAL_POOL, "max||mean"))
        assert a.feature_dims(3) == [3, 6, 32, 64]
        assert a.output_dim(3) == 64

    def test_identity_and_communicate_keep_dims(self):
        a = arch(IDENTITY, COMM, COMBINE)
        assert a.feature_dims(10) == [10, 10, 32]


class TestSerialization:
    def test_dict_roundtrip(self):
        a = arch(SAMPLE, AGG, COMM, COMBINE, POOL).with_name("candidate")
        restored = Architecture.from_dict(a.to_dict())
        assert restored.signature() == a.signature()
        assert restored.name == "candidate"

    def test_signature_distinguishes_functions(self):
        a = arch(OpSpec(OpType.AGGREGATE, "max"), POOL)
        b = arch(OpSpec(OpType.AGGREGATE, "mean"), POOL)
        assert a.signature() != b.signature()

    def test_describe_lists_placements(self):
        lines = arch(SAMPLE, COMM, POOL).describe()
        assert len(lines) == 4  # three ops + classifier
        assert lines[0].strip().startswith("device")
        assert "edge" in lines[2]


class TestValidity:
    def test_canonical_architecture_is_valid(self):
        assert is_valid(arch(SAMPLE, AGG, COMBINE, POOL))

    def test_consecutive_communicates_invalid(self):
        report = check_validity(arch(SAMPLE, AGG, COMM, COMM, COMBINE, POOL))
        assert not report.valid
        assert any("consecutive" in reason for reason in report.reasons)

    def test_aggregate_after_pool_invalid(self):
        report = check_validity(arch(SAMPLE, AGG, POOL, AGG, COMBINE))
        assert not report.valid
        assert any("after global pooling" in reason for reason in report.reasons)

    def test_aggregate_without_structure_invalid_for_point_clouds(self):
        assert not is_valid(arch(AGG, COMBINE, POOL), requires_sample=True)
        assert is_valid(arch(AGG, COMBINE, POOL), requires_sample=False)

    def test_missing_pool_invalid(self):
        report = check_validity(arch(SAMPLE, AGG, COMBINE))
        assert any("global pooling" in reason for reason in report.reasons)

    def test_no_compute_invalid(self):
        assert not is_valid(arch(SAMPLE, IDENTITY, POOL))

    def test_too_many_communicates_invalid(self):
        ops = (SAMPLE, COMM, AGG, COMM, COMBINE, COMM, IDENTITY, COMM, POOL)
        assert not is_valid(arch(*ops), max_communicates=3)

    def test_empty_architecture_invalid(self):
        assert not is_valid(Architecture(ops=()))

    def test_repeated_pool_invalid(self):
        assert not is_valid(arch(SAMPLE, AGG, POOL, POOL, COMBINE))


class TestDesignSpace:
    def test_sample_valid_produces_valid_architectures(self, modelnet_space):
        rng = np.random.default_rng(0)
        for _ in range(25):
            candidate = modelnet_space.sample_valid(rng)
            assert modelnet_space.is_valid(candidate)
            assert len(candidate) == modelnet_space.num_layers

    def test_mr_space_does_not_require_sample(self, mr_space):
        assert mr_space.requires_sample is False

    def test_space_size_and_choices(self, modelnet_space):
        assert modelnet_space.num_candidate_ops() > 10
        assert modelnet_space.size() == (modelnet_space.num_candidate_ops()
                                         ** modelnet_space.num_layers)

    def test_function_choice_lookup(self, modelnet_space):
        assert set(modelnet_space.function_choices(OpType.AGGREGATE)) == \
            {"add", "mean", "max"}
        with pytest.raises(ValueError):
            modelnet_space.function_choices("softmax")

    def test_mutation_changes_exactly_sampled_slots(self, modelnet_space):
        rng = np.random.default_rng(1)
        parent = modelnet_space.sample_valid(rng)
        child = modelnet_space.mutate(parent, rng)
        differences = sum(1 for a, b in zip(parent.ops, child.ops) if a != b)
        assert differences <= 1
        assert len(child) == len(parent)

    def test_crossover_mixes_parents(self, modelnet_space):
        rng = np.random.default_rng(2)
        a = modelnet_space.sample_valid(rng)
        b = modelnet_space.sample_valid(rng)
        child = modelnet_space.crossover(a, b, rng)
        assert len(child) == len(a)
        assert all(op in (a.ops[i], b.ops[i]) for i, op in enumerate(child.ops))

    def test_scale_down_shrinks_a_combine(self, modelnet_space):
        rng = np.random.default_rng(3)
        base = Architecture(ops=(SAMPLE, AGG, OpSpec(OpType.COMBINE, 64), POOL))
        shrunk = modelnet_space.scale_down(base, rng)
        widths = [op.function for op in shrunk.ops if op.op == OpType.COMBINE]
        assert widths[0] <= 64

    def test_scale_down_without_combine_is_noop(self, modelnet_space):
        rng = np.random.default_rng(4)
        base = arch(SAMPLE, AGG, POOL)
        assert modelnet_space.scale_down(base, rng).signature() == base.signature()

    def test_describe(self, modelnet_space):
        info = modelnet_space.describe()
        assert info["num_layers"] == 6 and info["space_size"] > 0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sampled_architectures_always_pass_their_own_validity(seed):
    """Property: sample_valid never returns an architecture that fails validation."""
    space = DesignSpace(num_layers=5,
                        profile=DataProfile.modelnet40(num_points=64, num_classes=4),
                        combine_widths=(16, 32), k_choices=(4,))
    candidate = space.sample_valid(np.random.default_rng(seed))
    assert space.is_valid(candidate)
    # The mapping always assigns each op to exactly one side.
    assert set(candidate.mapping()) <= {"device", "edge"}
