"""Kernel backends: registry semantics, numpy<->jit parity, arena hygiene.

The backend seam has three contracts worth pinning:

* **registry** — ``resolve_backend`` is total over ``KERNEL_BACKENDS``
  (unknown names rejected), ``"auto"`` degrades to numpy without numba,
  an *explicit* ``"numba"`` without numba fails loudly, and instances are
  process-wide singletons;
* **parity** — the plain-python jit source implementations (what numba
  compiles) match the vectorized numpy kernels bit-for-bit on integers and
  to <= 1e-6 on floats, *without* numba installed, so the tier-1 suite
  guards the exact code the optional backend will execute;
* **arena hygiene** — mixed-precision plans key buffers per dtype, so a
  warm plan never re-types (and therefore never re-allocates) a slot.

The numba-backed suites at the bottom only run when numba is importable
(CI's optional-deps job); everything above them is numba-free tier-1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Architecture, ArchitectureModel
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.runtime import (BufferArena, available_backends, calibrate,
                           compile_plan, numba_available, resolve_backend,
                           synthetic_calibration_frames)
from repro.runtime import kernels
from repro.runtime.backends import (KERNEL_BACKENDS, KernelBackend,
                                    NumpyBackend, _ACT_CODES, _RED_CODES,
                                    _dequantize_impl, _edgeconv_uniform_impl,
                                    _quant_edgeconv_impl,
                                    _quant_linear_f32_impl,
                                    _quant_linear_f64_impl, _quantize_impl)

requires_numba = pytest.mark.skipif(not numba_available(),
                                    reason="numba not installed")
without_numba = pytest.mark.skipif(numba_available(),
                                   reason="numba installed: auto picks it")


def _arch(aggregator: str = "max", pool: str = "max||mean") -> Architecture:
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=6),
        OpSpec(OpType.AGGREGATE, aggregator),
        OpSpec(OpType.COMBINE, 16),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=4),
        OpSpec(OpType.AGGREGATE, aggregator),
        OpSpec(OpType.GLOBAL_POOL, pool),
    ), name=f"{aggregator}-{pool}")


def _model(aggregator: str = "max", pool: str = "max||mean"):
    return ArchitectureModel(_arch(aggregator, pool), in_dim=3,
                             num_classes=5, seed=0)


def _frame(num_points: int = 32):
    graphs = SyntheticModelNet40(num_points=num_points, samples_per_class=1,
                                 num_classes=2, seed=0).generate()
    return Batch.from_graphs(graphs[:1])


def _int8_plan(model, segments=("full",)):
    calibration = calibrate(model, synthetic_calibration_frames(3, seed=0),
                            segments=segments)
    return compile_plan(model, segments=segments, calibration=calibration)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_numpy_always_available_and_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert set(names) <= {"numpy", "numba"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="kernel backend"):
            resolve_backend("cuda")

    def test_instances_are_singletons(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_instance_passes_through(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_registry_names_resolve(self):
        for name in KERNEL_BACKENDS:
            if name == "numba" and not numba_available():
                continue
            assert isinstance(resolve_backend(name), KernelBackend)

    @without_numba
    def test_auto_falls_back_to_numpy(self):
        assert resolve_backend("auto").name == "numpy"
        assert resolve_backend(None).name == "numpy"
        assert available_backends() == ("numpy",)

    @without_numba
    def test_explicit_numba_fails_loudly(self):
        with pytest.raises(RuntimeError, match="numba"):
            resolve_backend("numba")

    @requires_numba
    def test_auto_picks_numba_when_available(self):
        assert resolve_backend("auto").name == "numba"
        assert available_backends() == ("numpy", "numba")


# ----------------------------------------------------------------------
# Jit-source vs numpy-kernel parity (runs WITHOUT numba: the plain
# python implementations are exactly what numba compiles)
# ----------------------------------------------------------------------
class TestJitSourceParity:
    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def _xq(self, shape):
        return self.rng.integers(-127, 128, size=shape).astype(np.int8)

    def test_quantize_bit_parity(self):
        x = self.rng.standard_normal((9, 5)).astype(np.float32) * 2.5
        scale = 0.0371
        ref = kernels.quantize_array(x.copy(), scale, x.copy(),
                                     np.empty_like(x, dtype=np.int8))
        got = _quantize_impl(x, scale, np.empty_like(x, dtype=np.int8))
        np.testing.assert_array_equal(got, ref)

    def test_dequantize_bit_parity(self):
        xq = self._xq((7, 4))
        scale = 0.021
        ref = kernels.dequantize_array(xq, scale,
                                       np.empty(xq.shape, np.float32))
        got = _dequantize_impl(xq, scale, np.empty(xq.shape, np.float32))
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("activation", [None, "relu", "leaky_relu"])
    @pytest.mark.parametrize("requantize", [True, False])
    def test_quant_linear_f32_parity(self, activation, requantize):
        rows, kdim, cols = 6, 8, 5
        xq, wq = self._xq((rows, kdim)), self._xq((kdim, cols))
        w_scale = (self.rng.uniform(0.01, 0.1, cols)).astype(np.float32)
        bias = self.rng.standard_normal(cols).astype(np.float32)
        x_scale, out_scale, slope = 0.05, 0.11, 0.2
        acc = np.empty((rows, cols), np.float32)
        outq_ref = np.empty((rows, cols), np.int8)
        ref = kernels.quant_fused_linear(
            xq, wq.astype(np.float32), w_scale, x_scale, bias,
            np.empty((rows, kdim), np.float32), acc, activation, slope,
            out_scale if requantize else None, outq_ref, acc)
        mult = w_scale * np.float32(x_scale)
        out32 = np.empty((rows, cols), np.float32)
        outq = np.empty((rows, cols), np.int8)
        _quant_linear_f32_impl(xq, wq, mult, bias, _ACT_CODES[activation],
                               np.float32(slope), requantize, out_scale,
                               out32, outq)
        if requantize:
            np.testing.assert_array_equal(outq, ref)
        else:
            np.testing.assert_allclose(out32, ref, rtol=0, atol=1e-6)

    @pytest.mark.parametrize("requantize", [True, False])
    def test_quant_linear_f64_parity(self, requantize):
        rows, kdim, cols = 5, 40, 4
        xq, wq = self._xq((rows, kdim)), self._xq((kdim, cols))
        w_scale = (self.rng.uniform(0.01, 0.1, cols)).astype(np.float32)
        bias = self.rng.standard_normal(cols).astype(np.float32)
        x_scale, out_scale = 0.04, 0.6
        acc = np.empty((rows, cols), np.float64)
        out32_ref = np.empty((rows, cols), np.float32)
        outq_ref = np.empty((rows, cols), np.int8)
        ref = kernels.quant_fused_linear(
            xq, wq.astype(np.float64), w_scale, x_scale, bias,
            np.empty((rows, kdim), np.float64), acc, "relu", 0.0,
            out_scale if requantize else None, outq_ref, out32_ref)
        mult = w_scale * np.float32(x_scale)
        out32 = np.empty((rows, cols), np.float32)
        outq = np.empty((rows, cols), np.int8)
        _quant_linear_f64_impl(xq, wq, mult, bias, _ACT_CODES["relu"],
                               np.float32(0.0), requantize, out_scale,
                               out32, outq)
        if requantize:
            np.testing.assert_array_equal(outq, ref)
        else:
            np.testing.assert_allclose(out32, ref, rtol=0, atol=1e-6)

    @pytest.mark.parametrize("reduce", ["max", "add", "mean"])
    def test_quant_edgeconv_bit_parity(self, reduce):
        num_nodes, k, features = 6, 3, 4
        xq = self._xq((num_nodes, features))
        src = self.rng.integers(0, num_nodes,
                                size=num_nodes * k).astype(np.int64)
        gather = np.empty((num_nodes, k, features), np.int8)
        ref = kernels.quant_edgeconv_uniform(
            xq, src, k, reduce, gather,
            np.empty((num_nodes, 2 * features), np.int16))
        got = _quant_edgeconv_impl(xq, src, k, _RED_CODES[reduce],
                                   np.empty((num_nodes, 2 * features),
                                            np.int16))
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("reduce", ["max", "add", "mean"])
    def test_float_edgeconv_parity(self, reduce):
        num_nodes, k, features = 6, 3, 4
        x = self.rng.standard_normal((num_nodes, features)).astype(np.float32)
        src = self.rng.integers(0, num_nodes,
                                size=num_nodes * k).astype(np.int64)
        ref = kernels.edgeconv_uniform(
            x, src, k, reduce, np.empty((num_nodes, k, features), np.float32),
            np.empty((num_nodes, 2 * features), np.float32))
        got = _edgeconv_uniform_impl(x, src, k, _RED_CODES[reduce],
                                     np.empty((num_nodes, 2 * features),
                                              np.float32))
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-6)


# ----------------------------------------------------------------------
# Satellite: float32 stays float32 (no silent float64 upcasts)
# ----------------------------------------------------------------------
class TestDtypePreservation:
    def test_relu_preserves_float32(self):
        x = np.linspace(-1, 1, 12, dtype=np.float32).reshape(3, 4)
        out = kernels.relu_(x)
        assert out.dtype == np.float32 and out is x
        assert out.min() >= 0.0

    def test_fused_linear_preserves_float32(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 6)).astype(np.float32)
        w = rng.standard_normal((6, 3)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        for activation in (None, "relu", "leaky_relu"):
            out = kernels.fused_linear(x, w, b, np.empty((4, 3), np.float32),
                                       activation=activation)
            assert out.dtype == np.float32

    def test_edgeconv_uniform_preserves_float32(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((6, 4)).astype(np.float32)
        src = rng.integers(0, 6, size=18).astype(np.int64)
        for reduce in ("max", "add", "mean"):
            out = kernels.edgeconv_uniform(
                x, src, 3, reduce, np.empty((6, 3, 4), np.float32),
                np.empty((6, 8), np.float32))
            assert out.dtype == np.float32

    def test_float32_plan_arena_holds_no_float64_features(self):
        """A float32 plan's feature buffers must all be float32 — an upcast
        anywhere in the step chain would surface here as a float64 slot."""
        plan = compile_plan(_model(), dtype=np.float32, segments=("full",))
        frame = _frame()
        plan(frame)
        stats = plan.full.arena.dtype_stats()
        assert "float32" in stats and stats["float32"]["slots"] > 0
        assert "float64" not in stats
        assert plan(frame).dtype == np.float32


# ----------------------------------------------------------------------
# Satellite: per-dtype arena accounting, no retype thrash
# ----------------------------------------------------------------------
class TestArenaDtypeStats:
    def test_retype_counter_and_stats(self):
        arena = BufferArena()
        arena.take("a", (4, 4), np.float64)
        arena.take("a", (4, 4), np.float64)
        assert arena.retypes == 0
        arena.take("a", (4, 4), np.float32)  # same slot, new dtype
        assert arena.retypes == 1
        arena.take("b", (2, 2), np.int8)
        stats = arena.dtype_stats()
        assert stats["float32"]["slots"] == 1
        assert stats["int8"]["slots"] == 1
        assert stats["int8"]["nbytes"] == 4

    def test_mixed_precision_plan_never_retypes(self):
        """Quantized plans interleave int8/int16/float32 buffers; slot keys
        must keep them apart so a warm plan only ever reuses buffers."""
        plan = _int8_plan(_model())
        frame = _frame()
        plan(frame)
        arena = plan.full.arena
        allocations = arena.allocations
        plan(frame)
        plan(frame)
        assert arena.retypes == 0
        assert arena.allocations == allocations  # warm: pure reuse
        stats = arena.dtype_stats()
        assert stats["int8"]["slots"] > 0  # quantized activations
        assert stats["float32"]["slots"] > 0  # scales/logit outputs

    def test_float_and_quant_plans_share_nothing(self):
        """Serving one float and one int8 plan side by side (mixed-precision
        zoo) keeps each arena self-consistent — no cross-plan aliasing."""
        frame = _frame()
        float_plan = compile_plan(_model(), segments=("full",))
        quant_plan = _int8_plan(_model())
        baseline = float_plan(frame).copy()
        for _ in range(3):
            quant_plan(frame)
            np.testing.assert_allclose(float_plan(frame), baseline,
                                       atol=0, rtol=0)


# ----------------------------------------------------------------------
# Numba backend parity (optional-deps job; skipped without numba)
# ----------------------------------------------------------------------
@requires_numba
class TestNumbaBackendParity:
    def setup_method(self):
        self.numpy = resolve_backend("numpy")
        self.numba = resolve_backend("numba")
        self.rng = np.random.default_rng(3)

    def test_quantize_dequantize_match(self):
        x = self.rng.standard_normal((8, 6)).astype(np.float32)
        scale = 0.017
        ref = self.numpy.quantize(x, scale, x.copy(),
                                  np.empty(x.shape, np.int8))
        got = self.numba.quantize(x, scale, x.copy(),
                                  np.empty(x.shape, np.int8))
        np.testing.assert_array_equal(got, ref)
        dref = self.numpy.dequantize(ref, scale, np.empty(x.shape, np.float32))
        dgot = self.numba.dequantize(ref, scale, np.empty(x.shape, np.float32))
        np.testing.assert_array_equal(dgot, dref)

    @pytest.mark.parametrize("reduce", ["max", "add", "mean"])
    def test_quant_edgeconv_matches(self, reduce):
        num_nodes, k, features = 10, 4, 6
        xq = self.rng.integers(-127, 128,
                               size=(num_nodes, features)).astype(np.int8)
        src = self.rng.integers(0, num_nodes,
                                size=num_nodes * k).astype(np.int64)
        ref = self.numpy.quant_edgeconv_uniform(
            xq, src, k, reduce, np.empty((num_nodes, k, features), np.int8),
            np.empty((num_nodes, 2 * features), np.int16))
        got = self.numba.quant_edgeconv_uniform(
            xq, src, k, reduce, np.empty((num_nodes, k, features), np.int8),
            np.empty((num_nodes, 2 * features), np.int16))
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("precision", ["float32", "int8"])
    def test_full_plan_equivalence(self, precision):
        """Whole compiled plans agree across backends to <= 1e-6."""
        frame = _frame()
        outputs = []
        for backend in ("numpy", "numba"):
            model = _model()
            if precision == "int8":
                calibration = calibrate(
                    model, synthetic_calibration_frames(3, seed=0),
                    segments=("full",))
                plan = compile_plan(model, segments=("full",),
                                    backend=backend, calibration=calibration)
            else:
                plan = compile_plan(model, dtype=np.float32,
                                    segments=("full",), backend=backend)
            outputs.append(plan(frame))
        np.testing.assert_allclose(outputs[1], outputs[0], rtol=0, atol=1e-6)
