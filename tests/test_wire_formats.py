"""Wire framing: zero-copy raw format, auto-detection, size accounting.

The engine speaks two self-describing framings — zlib (paper-faithful,
compressed) and raw (zero-copy) — distinguished by their first byte.  These
tests pin the round-trip fidelity of both, the versioning of the raw
layout, the single-serializer size accounting (``compressed_size`` can
never drift from the real wire), and the end-to-end behavior of mixed-
framing clients against one server.

The hostile-input half (``TestHostileFrames`` down) treats every byte of
the frame as peer-controlled: garbage streams, lying headers (shapes,
dtypes, lengths that don't match the payload), truncated frames and
absurd length prefixes must all surface as a clean ``ValueError`` /
``ConnectionError`` — never a hang, a blind allocation, or an array the
sender never sent — and a server fed such a frame must drop *that
connection only* and keep serving everyone else.
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np
import pytest

from repro.core import Architecture, ArchitectureModel, split_callables
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.system import (DeviceClient, EdgeServer, Message,
                          WIRE_FORMAT_RAW, WIRE_FORMAT_ZLIB, WIRE_FORMATS,
                          compressed_size, deserialize_message,
                          serialize_message)
from repro.system.messages import (_LENGTH_FORMAT, _LENGTH_SIZE, _RAW_MAGIC,
                                   _RAW_VERSION, MAX_MESSAGE_BYTES,
                                   recv_message, send_payload)


def _sample_message(**overrides) -> Message:
    rng = np.random.default_rng(0)
    fields = dict(
        kind="frame", frame_id=7,
        arrays={
            "x": rng.standard_normal((12, 5)),
            "x32": rng.standard_normal((3, 4)).astype(np.float32),
            "batch": np.zeros(12, dtype=np.int64),
            "edge_index": rng.integers(0, 12, size=(2, 30)),
            "empty": np.zeros((0, 8)),
        },
        meta={"num_graphs": 1, "pooled": False, "nested": {"a": [1, 2]}},
        batch_index=2)
    fields.update(overrides)
    return Message(**fields)


class TestRawFormat:
    def test_roundtrip_preserves_arrays_and_metadata(self):
        message = _sample_message()
        blob = serialize_message(message, wire_format=WIRE_FORMAT_RAW)
        decoded = deserialize_message(blob)
        assert decoded.kind == message.kind
        assert decoded.frame_id == message.frame_id
        assert decoded.meta == message.meta
        assert decoded.batch_index == message.batch_index
        assert decoded.wire_format == WIRE_FORMAT_RAW
        assert set(decoded.arrays) == set(message.arrays)
        for name, original in message.arrays.items():
            received = decoded.arrays[name]
            assert received.dtype == original.dtype  # dtype survives the wire
            assert received.shape == original.shape
            np.testing.assert_array_equal(received, original)

    def test_raw_arrays_are_zero_copy_views(self):
        """Decoded arrays view the received blob: no per-array copy."""
        blob = serialize_message(_sample_message(),
                                 wire_format=WIRE_FORMAT_RAW)
        decoded = deserialize_message(blob)
        for array in decoded.arrays.values():
            assert not array.flags.writeable  # view over immutable bytes
            assert array.base is not None

    def test_formats_are_auto_detected(self):
        message = _sample_message()
        for wire_format in WIRE_FORMATS:
            blob = serialize_message(message, wire_format=wire_format)
            decoded = deserialize_message(blob)
            assert decoded.wire_format == wire_format
            np.testing.assert_array_equal(decoded.arrays["x"],
                                          message.arrays["x"])

    def test_message_wire_format_attribute_drives_serialization(self):
        """With no explicit format, the message's own attribute decides —
        this is how server replies mirror their request's framing."""
        message = _sample_message(wire_format=WIRE_FORMAT_RAW)
        blob = serialize_message(message)
        assert blob[0] == _RAW_MAGIC
        assert deserialize_message(blob).wire_format == WIRE_FORMAT_RAW

    def test_unknown_raw_version_raises(self):
        blob = serialize_message(_sample_message(),
                                 wire_format=WIRE_FORMAT_RAW)
        tampered = bytes([blob[0], _RAW_VERSION + 1]) + blob[2:]
        with pytest.raises(ValueError, match="version"):
            deserialize_message(tampered)

    def test_unknown_wire_format_rejected(self):
        with pytest.raises(ValueError, match="unknown wire format"):
            serialize_message(_sample_message(), wire_format="gzip")

    def test_non_contiguous_arrays_serialize_correctly(self):
        strided = np.arange(24, dtype=np.float64).reshape(6, 4)[:, ::2]
        blob = serialize_message(Message(kind="frame",
                                         arrays={"x": strided}),
                                 wire_format=WIRE_FORMAT_RAW)
        np.testing.assert_array_equal(deserialize_message(blob).arrays["x"],
                                      strided)


class TestSizeAccounting:
    def test_compressed_size_matches_actual_wire_bytes(self):
        """The size estimate is produced by the one true serializer."""
        arrays = _sample_message().arrays
        for wire_format in WIRE_FORMATS:
            expected = len(serialize_message(Message(kind="frame",
                                                     arrays=dict(arrays)),
                                             wire_format=wire_format))
            assert compressed_size(arrays,
                                   wire_format=wire_format) == expected

    def test_compressed_size_tracks_compression_level(self):
        arrays = {"x": np.zeros((64, 64))}
        fast = compressed_size(arrays, compress_level=1)
        best = compressed_size(arrays, compress_level=9)
        assert best <= fast

    def test_raw_size_is_payload_plus_header(self):
        array = np.zeros((16, 8))
        size = compressed_size({"x": array}, wire_format=WIRE_FORMAT_RAW)
        assert size > array.nbytes  # header on top of the raw payload
        assert size < array.nbytes + 256  # ... and nothing else


class TestEngineWireFormats:
    @pytest.fixture()
    def serving(self):
        arch = Architecture(ops=(
            OpSpec(OpType.SAMPLE, "knn", k=4),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.COMBINE, 16),
            OpSpec(OpType.COMMUNICATE, "uplink"),
            OpSpec(OpType.AGGREGATE, "mean"),
            OpSpec(OpType.GLOBAL_POOL, "max||mean"),
        ), name="wire-test")
        model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        device_fn, edge_fn = split_callables(model)
        graphs = SyntheticModelNet40(num_points=24, samples_per_class=1,
                                     num_classes=4, seed=0).generate()
        frames = [Batch.from_graphs([graph]) for graph in graphs[:4]]
        server = EdgeServer(edge_fn).start()
        yield server, device_fn, frames
        server.stop()

    def test_raw_client_matches_zlib_client(self, serving):
        server, device_fn, frames = serving
        zlib_client = DeviceClient(server.host, server.port)
        raw_client = DeviceClient(server.host, server.port,
                                  wire_format=WIRE_FORMAT_RAW)
        try:
            zlib_results, _ = zlib_client.run_pipeline(frames, device_fn)
            raw_results, _ = raw_client.run_pipeline(frames, device_fn)
        finally:
            zlib_client.close()
            raw_client.close()
        for a, b in zip(zlib_results, raw_results):
            np.testing.assert_array_equal(a.arrays["logits"],
                                          b.arrays["logits"])

    def test_wire_dtype_halves_traffic_within_tolerance(self, serving):
        server, device_fn, frames = serving
        full = DeviceClient(server.host, server.port,
                            wire_format=WIRE_FORMAT_RAW)
        half = DeviceClient(server.host, server.port,
                            wire_format=WIRE_FORMAT_RAW,
                            wire_dtype=np.float32)
        try:
            full_results, full_stats = full.run_pipeline(frames, device_fn)
            half_results, half_stats = half.run_pipeline(frames, device_fn)
        finally:
            full.close()
            half.close()
        assert half_stats.bytes_sent < full_stats.bytes_sent
        for a, b in zip(full_results, half_results):
            np.testing.assert_allclose(a.arrays["logits"],
                                       b.arrays["logits"], atol=1e-3, rtol=0)

    def test_error_replies_arrive_on_raw_connections(self, serving):
        server, device_fn, frames = serving
        client = DeviceClient(server.host, server.port,
                              wire_format=WIRE_FORMAT_RAW)
        try:
            def broken_device_fn(frame):
                arrays, meta = device_fn(frame)
                bad = dict(arrays)
                bad["x"] = np.asarray(arrays["x"])[:, :1]  # wrong feature dim
                return bad, meta
            with pytest.raises(RuntimeError, match="edge execution failed"):
                client.run_pipeline(frames[:1], broken_device_fn,
                                    timeout_s=20.0)
        finally:
            client.close()

    def test_invalid_client_knobs_rejected(self, serving):
        server, _, _ = serving
        with pytest.raises(ValueError, match="wire format"):
            DeviceClient(server.host, server.port, wire_format="gzip")
        with pytest.raises(ValueError, match="floating"):
            DeviceClient(server.host, server.port, wire_dtype=np.int32)


# ----------------------------------------------------------------------
# Hostile frames: every header field is peer-controlled
# ----------------------------------------------------------------------
def _raw_parts(message: Message):
    """Split a serialized raw frame into (header dict, payload bytes)."""
    blob = serialize_message(message, wire_format=WIRE_FORMAT_RAW)
    (header_len,) = struct.unpack_from(_LENGTH_FORMAT, blob, 2)
    start = 2 + _LENGTH_SIZE
    header = json.loads(blob[start:start + header_len].decode("utf-8"))
    return header, blob[start + header_len:]


def _raw_frame(header: dict, payload: bytes) -> bytes:
    """Reassemble a raw frame from a (possibly lying) header + payload."""
    header_bytes = json.dumps(header).encode("utf-8")
    return b"".join([bytes((_RAW_MAGIC, _RAW_VERSION)),
                     struct.pack(_LENGTH_FORMAT, len(header_bytes)),
                     header_bytes, payload])


class TestHostileFrames:
    def test_garbage_bytes_are_a_clean_value_error(self):
        for blob in (b"\x00" * 64, b"not a frame at all", b"\xff\xfe\xfd",
                     bytes((_RAW_MAGIC,))):  # magic byte alone, no version
            with pytest.raises(ValueError, match="undecodable"):
                deserialize_message(blob)

    def test_header_length_beyond_blob_rejected(self):
        header, payload = _raw_parts(_sample_message())
        frame = _raw_frame(header, payload)
        # Rewrite the header-length word to claim more bytes than exist.
        lying = frame[:2] + struct.pack(_LENGTH_FORMAT,
                                        len(frame) * 2) + frame[6:]
        with pytest.raises(ValueError, match="truncated"):
            deserialize_message(lying)

    def test_header_overclaiming_shape_rejected(self):
        """A shape larger than the payload must fail, not read past it."""
        header, payload = _raw_parts(_sample_message())
        name, dtype, shape = header["arrays"][0]
        header["arrays"][0] = [name, dtype, [shape[0] * 1000] + shape[1:]]
        with pytest.raises(ValueError, match="truncated"):
            deserialize_message(_raw_frame(header, payload))

    def test_header_lying_dtype_rejected(self):
        """A wider dtype than was sent overruns the payload: clean error."""
        header, payload = _raw_parts(
            Message(kind="frame", arrays={"x": np.zeros(8, np.float32)}))
        name, _, shape = header["arrays"][0]
        header["arrays"][0] = [name, "<c16", shape]  # 16B items, 4B sent
        with pytest.raises(ValueError, match="truncated"):
            deserialize_message(_raw_frame(header, payload))

    def test_overflowing_shape_product_rejected(self):
        """A shape whose element product overflows int64 must still fail
        the size check: a wrapped product of 0 (or negative, which
        np.frombuffer reads as 'the whole buffer') would slip past it."""
        for shape in ([2 ** 32, 2 ** 33],   # product 2**65 -> wraps to 0
                      [2 ** 62, 6]):        # wraps negative
            header, payload = _raw_parts(_sample_message())
            name, dtype, _ = header["arrays"][0]
            header["arrays"][0] = [name, dtype, shape]
            with pytest.raises(ValueError, match="truncated"):
                deserialize_message(_raw_frame(header, payload))

    def test_negative_shape_dimension_rejected(self):
        """count=-1 means 'read everything' to np.frombuffer: must never
        reach it from a wire header."""
        header, payload = _raw_parts(_sample_message())
        name, dtype, shape = header["arrays"][0]
        header["arrays"][0] = [name, dtype, [-1] + shape[1:]]
        with pytest.raises(ValueError, match="invalid shape"):
            deserialize_message(_raw_frame(header, payload))

    def test_non_integer_shape_dimension_rejected(self):
        header, payload = _raw_parts(_sample_message())
        name, dtype, shape = header["arrays"][0]
        header["arrays"][0] = [name, dtype, ["12"] + shape[1:]]
        with pytest.raises(ValueError, match="invalid shape"):
            deserialize_message(_raw_frame(header, payload))

    def test_invalid_json_header_rejected(self):
        frame = _raw_frame({}, b"")
        broken = frame[:6] + b"{nope!" + frame[8:]
        with pytest.raises(ValueError):
            deserialize_message(broken)

    def test_missing_header_keys_rejected(self):
        frame = _raw_frame({"arrays": []}, b"")  # no kind/frame_id/meta
        with pytest.raises(ValueError, match="undecodable"):
            deserialize_message(frame)

    def test_invalid_dtype_string_rejected(self):
        header, payload = _raw_parts(_sample_message())
        name, _, shape = header["arrays"][0]
        header["arrays"][0] = [name, "not-a-dtype", shape]
        with pytest.raises(ValueError):
            deserialize_message(_raw_frame(header, payload))


class TestSocketFraming:
    """recv_message against closing, truncating and overclaiming peers."""

    @pytest.fixture
    def pair(self):
        ours, theirs = socket.socketpair()
        ours.settimeout(10.0)
        theirs.settimeout(10.0)
        yield ours, theirs
        ours.close()
        theirs.close()

    def test_roundtrip_records_wire_bytes(self, pair):
        ours, theirs = pair
        blob = serialize_message(_sample_message(),
                                 wire_format=WIRE_FORMAT_RAW)
        send_payload(theirs, blob)
        message = recv_message(ours)
        assert message.frame_id == 7
        assert message.wire_bytes == len(blob) + _LENGTH_SIZE

    def test_clean_close_returns_none(self, pair):
        ours, theirs = pair
        theirs.close()
        assert recv_message(ours) is None

    def test_close_mid_prefix_raises(self, pair):
        ours, theirs = pair
        theirs.sendall(b"\x00\x00")  # half a length prefix
        theirs.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            recv_message(ours)

    def test_close_mid_payload_raises(self, pair):
        ours, theirs = pair
        theirs.sendall(struct.pack(_LENGTH_FORMAT, 100) + b"x" * 10)
        theirs.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            recv_message(ours)

    def test_oversize_prefix_rejected_before_any_payload(self, pair):
        """The 4-byte prefix can claim 4 GiB; the reader must refuse it
        from the prefix alone — no allocation, no waiting for bytes that
        will never come."""
        ours, theirs = pair
        theirs.sendall(struct.pack(_LENGTH_FORMAT, 0xFFFFFFFF))
        # Deliberately send nothing else: a reader that tried to receive
        # the claimed payload would hang here instead of raising.
        with pytest.raises(ConnectionError, match="cap"):
            recv_message(ours)

    def test_custom_cap_is_enforced(self, pair):
        ours, theirs = pair
        theirs.sendall(struct.pack(_LENGTH_FORMAT, 2048))
        with pytest.raises(ConnectionError, match="cap"):
            recv_message(ours, max_bytes=1024)
        assert 2048 <= MAX_MESSAGE_BYTES  # the default would have allowed it


class TestServerSurvivesHostileClients:
    @pytest.fixture(params=["threaded", "async"])
    def serving(self, request):
        arch = Architecture(ops=(
            OpSpec(OpType.SAMPLE, "knn", k=4),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.COMBINE, 16),
            OpSpec(OpType.COMMUNICATE, "uplink"),
            OpSpec(OpType.GLOBAL_POOL, "max||mean"),
        ), name="hostile-test")
        model = ArchitectureModel(arch, in_dim=3, num_classes=4, seed=0)
        device_fn, edge_fn = split_callables(model)
        graphs = SyntheticModelNet40(num_points=24, samples_per_class=1,
                                     num_classes=4, seed=0).generate()
        frames = [Batch.from_graphs([graph]) for graph in graphs[:2]]
        server = EdgeServer(edge_fn, frontend=request.param).start()
        yield server, device_fn, frames
        server.stop()

    def _assert_connection_dropped(self, sock):
        """The server must close the hostile connection — not hang it."""
        sock.settimeout(10.0)
        deadline_hit = False
        try:
            while sock.recv(4096):
                pass
        except socket.timeout:  # pragma: no cover - the failure mode
            deadline_hit = True
        except OSError:
            pass
        assert not deadline_hit, "server kept a hostile connection open"

    def _assert_still_serving(self, server, device_fn, frames):
        client = DeviceClient(server.host, server.port)
        try:
            results, _ = client.run_pipeline(frames, device_fn)
        finally:
            client.close()
        assert len(results) == len(frames)

    def test_garbage_payload_drops_connection_only(self, serving):
        server, device_fn, frames = serving
        with socket.create_connection((server.host, server.port),
                                      timeout=10.0) as sock:
            send_payload(sock, b"\xde\xad\xbe\xef not a frame")
            self._assert_connection_dropped(sock)
        self._assert_still_serving(server, device_fn, frames)

    def test_lying_raw_header_drops_connection_only(self, serving):
        server, device_fn, frames = serving
        header, payload = _raw_parts(_sample_message())
        name, dtype, shape = header["arrays"][0]
        header["arrays"][0] = [name, dtype, [10 ** 6] + shape[1:]]
        with socket.create_connection((server.host, server.port),
                                      timeout=10.0) as sock:
            send_payload(sock, _raw_frame(header, payload))
            self._assert_connection_dropped(sock)
        self._assert_still_serving(server, device_fn, frames)

    def test_oversize_prefix_drops_connection_only(self, serving):
        server, device_fn, frames = serving
        with socket.create_connection((server.host, server.port),
                                      timeout=10.0) as sock:
            sock.sendall(struct.pack(_LENGTH_FORMAT, 0xFFFFFFF0))
            # No payload follows: the server must reject from the prefix
            # alone rather than buffer toward 4 GiB that never arrives.
            self._assert_connection_dropped(sock)
        self._assert_still_serving(server, device_fn, frames)

    def test_truncated_frame_mid_wire_fails_clean(self, serving):
        """chaosnet's truncate fault: the client sees a connection error
        (never a hang), the server keeps serving other clients."""
        from chaosnet import ChaosProxy

        server, device_fn, frames = serving
        with ChaosProxy(server.host, server.port) as proxy:
            proxy.client_to_server.truncate_next(keep_bytes=6)
            client = DeviceClient(proxy.host, proxy.port)
            try:
                with pytest.raises((ConnectionError, OSError, RuntimeError)):
                    client.run_pipeline(frames, device_fn, timeout_s=20.0)
            finally:
                client.close()
        self._assert_still_serving(server, device_fn, frames)
