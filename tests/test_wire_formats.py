"""Wire framing: zero-copy raw format, auto-detection, size accounting.

The engine speaks two self-describing framings — zlib (paper-faithful,
compressed) and raw (zero-copy) — distinguished by their first byte.  These
tests pin the round-trip fidelity of both, the versioning of the raw
layout, the single-serializer size accounting (``compressed_size`` can
never drift from the real wire), and the end-to-end behavior of mixed-
framing clients against one server.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Architecture, ArchitectureModel, split_callables
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.system import (DeviceClient, EdgeServer, Message,
                          WIRE_FORMAT_RAW, WIRE_FORMAT_ZLIB, WIRE_FORMATS,
                          compressed_size, deserialize_message,
                          serialize_message)
from repro.system.messages import _RAW_MAGIC, _RAW_VERSION


def _sample_message(**overrides) -> Message:
    rng = np.random.default_rng(0)
    fields = dict(
        kind="frame", frame_id=7,
        arrays={
            "x": rng.standard_normal((12, 5)),
            "x32": rng.standard_normal((3, 4)).astype(np.float32),
            "batch": np.zeros(12, dtype=np.int64),
            "edge_index": rng.integers(0, 12, size=(2, 30)),
            "empty": np.zeros((0, 8)),
        },
        meta={"num_graphs": 1, "pooled": False, "nested": {"a": [1, 2]}},
        batch_index=2)
    fields.update(overrides)
    return Message(**fields)


class TestRawFormat:
    def test_roundtrip_preserves_arrays_and_metadata(self):
        message = _sample_message()
        blob = serialize_message(message, wire_format=WIRE_FORMAT_RAW)
        decoded = deserialize_message(blob)
        assert decoded.kind == message.kind
        assert decoded.frame_id == message.frame_id
        assert decoded.meta == message.meta
        assert decoded.batch_index == message.batch_index
        assert decoded.wire_format == WIRE_FORMAT_RAW
        assert set(decoded.arrays) == set(message.arrays)
        for name, original in message.arrays.items():
            received = decoded.arrays[name]
            assert received.dtype == original.dtype  # dtype survives the wire
            assert received.shape == original.shape
            np.testing.assert_array_equal(received, original)

    def test_raw_arrays_are_zero_copy_views(self):
        """Decoded arrays view the received blob: no per-array copy."""
        blob = serialize_message(_sample_message(),
                                 wire_format=WIRE_FORMAT_RAW)
        decoded = deserialize_message(blob)
        for array in decoded.arrays.values():
            assert not array.flags.writeable  # view over immutable bytes
            assert array.base is not None

    def test_formats_are_auto_detected(self):
        message = _sample_message()
        for wire_format in WIRE_FORMATS:
            blob = serialize_message(message, wire_format=wire_format)
            decoded = deserialize_message(blob)
            assert decoded.wire_format == wire_format
            np.testing.assert_array_equal(decoded.arrays["x"],
                                          message.arrays["x"])

    def test_message_wire_format_attribute_drives_serialization(self):
        """With no explicit format, the message's own attribute decides —
        this is how server replies mirror their request's framing."""
        message = _sample_message(wire_format=WIRE_FORMAT_RAW)
        blob = serialize_message(message)
        assert blob[0] == _RAW_MAGIC
        assert deserialize_message(blob).wire_format == WIRE_FORMAT_RAW

    def test_unknown_raw_version_raises(self):
        blob = serialize_message(_sample_message(),
                                 wire_format=WIRE_FORMAT_RAW)
        tampered = bytes([blob[0], _RAW_VERSION + 1]) + blob[2:]
        with pytest.raises(ValueError, match="version"):
            deserialize_message(tampered)

    def test_unknown_wire_format_rejected(self):
        with pytest.raises(ValueError, match="unknown wire format"):
            serialize_message(_sample_message(), wire_format="gzip")

    def test_non_contiguous_arrays_serialize_correctly(self):
        strided = np.arange(24, dtype=np.float64).reshape(6, 4)[:, ::2]
        blob = serialize_message(Message(kind="frame",
                                         arrays={"x": strided}),
                                 wire_format=WIRE_FORMAT_RAW)
        np.testing.assert_array_equal(deserialize_message(blob).arrays["x"],
                                      strided)


class TestSizeAccounting:
    def test_compressed_size_matches_actual_wire_bytes(self):
        """The size estimate is produced by the one true serializer."""
        arrays = _sample_message().arrays
        for wire_format in WIRE_FORMATS:
            expected = len(serialize_message(Message(kind="frame",
                                                     arrays=dict(arrays)),
                                             wire_format=wire_format))
            assert compressed_size(arrays,
                                   wire_format=wire_format) == expected

    def test_compressed_size_tracks_compression_level(self):
        arrays = {"x": np.zeros((64, 64))}
        fast = compressed_size(arrays, compress_level=1)
        best = compressed_size(arrays, compress_level=9)
        assert best <= fast

    def test_raw_size_is_payload_plus_header(self):
        array = np.zeros((16, 8))
        size = compressed_size({"x": array}, wire_format=WIRE_FORMAT_RAW)
        assert size > array.nbytes  # header on top of the raw payload
        assert size < array.nbytes + 256  # ... and nothing else


class TestEngineWireFormats:
    @pytest.fixture()
    def serving(self):
        arch = Architecture(ops=(
            OpSpec(OpType.SAMPLE, "knn", k=4),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.COMBINE, 16),
            OpSpec(OpType.COMMUNICATE, "uplink"),
            OpSpec(OpType.AGGREGATE, "mean"),
            OpSpec(OpType.GLOBAL_POOL, "max||mean"),
        ), name="wire-test")
        model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        device_fn, edge_fn = split_callables(model)
        graphs = SyntheticModelNet40(num_points=24, samples_per_class=1,
                                     num_classes=4, seed=0).generate()
        frames = [Batch.from_graphs([graph]) for graph in graphs[:4]]
        server = EdgeServer(edge_fn).start()
        yield server, device_fn, frames
        server.stop()

    def test_raw_client_matches_zlib_client(self, serving):
        server, device_fn, frames = serving
        zlib_client = DeviceClient(server.host, server.port)
        raw_client = DeviceClient(server.host, server.port,
                                  wire_format=WIRE_FORMAT_RAW)
        try:
            zlib_results, _ = zlib_client.run_pipeline(frames, device_fn)
            raw_results, _ = raw_client.run_pipeline(frames, device_fn)
        finally:
            zlib_client.close()
            raw_client.close()
        for a, b in zip(zlib_results, raw_results):
            np.testing.assert_array_equal(a.arrays["logits"],
                                          b.arrays["logits"])

    def test_wire_dtype_halves_traffic_within_tolerance(self, serving):
        server, device_fn, frames = serving
        full = DeviceClient(server.host, server.port,
                            wire_format=WIRE_FORMAT_RAW)
        half = DeviceClient(server.host, server.port,
                            wire_format=WIRE_FORMAT_RAW,
                            wire_dtype=np.float32)
        try:
            full_results, full_stats = full.run_pipeline(frames, device_fn)
            half_results, half_stats = half.run_pipeline(frames, device_fn)
        finally:
            full.close()
            half.close()
        assert half_stats.bytes_sent < full_stats.bytes_sent
        for a, b in zip(full_results, half_results):
            np.testing.assert_allclose(a.arrays["logits"],
                                       b.arrays["logits"], atol=1e-3, rtol=0)

    def test_error_replies_arrive_on_raw_connections(self, serving):
        server, device_fn, frames = serving
        client = DeviceClient(server.host, server.port,
                              wire_format=WIRE_FORMAT_RAW)
        try:
            def broken_device_fn(frame):
                arrays, meta = device_fn(frame)
                bad = dict(arrays)
                bad["x"] = np.asarray(arrays["x"])[:, :1]  # wrong feature dim
                return bad, meta
            with pytest.raises(RuntimeError, match="edge execution failed"):
                client.run_pipeline(frames[:1], broken_device_fn,
                                    timeout_s=20.0)
        finally:
            client.close()

    def test_invalid_client_knobs_rejected(self, serving):
        server, _, _ = serving
        with pytest.raises(ValueError, match="wire format"):
            DeviceClient(server.host, server.port, wire_format="gzip")
        with pytest.raises(ValueError, match="floating"):
            DeviceClient(server.host, server.port, wire_dtype=np.int32)
