"""Known-clean dtype fixture: every scalar typed at the use site."""

import numpy as np


def halve(x):
    return x * x.dtype.type(0.5)  # repo idiom: scalar takes the array dtype


def clamp(out):
    np.maximum(out, out.dtype.type(0), out=out)  # int literal is weak anyway
    return out


def scale(x, factor):
    return x * np.float32(factor)  # explicit float32 scalar


def shapes(rows, k):
    return rows * 2 + k - 1  # integer index math is always fine
