"""Known-bad layering fixture: imports outside the (empty) allowlist.

The test scans this file with an empty allowlist, so only the standard
library is legal — both repo-style imports below must be flagged.
"""

import json  # stdlib: always allowed

import numpy as np  # noqa: F401  — outside an empty allowlist

from repro.serving.app import serve  # noqa: F401  — upper tier

_ = json
