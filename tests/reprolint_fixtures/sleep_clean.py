"""Known-clean fixture for the sleep-discipline checker.

Condition polling via wait_until, and naps only inside nested workload
callables (simulated slow work is the thing under test, not test
synchronization).
"""

import threading
import time


def wait_until(predicate, timeout=10.0):  # stand-in for conftest.wait_until
    deadline = timeout
    while not predicate() and deadline > 0:
        deadline -= 1
    assert predicate()


def test_server_came_up(server):
    server.start()
    wait_until(lambda: server.running)


def test_slow_edge_workload(run):
    def slow_edge(arrays, meta):  # nested: simulates slow work, exempt
        time.sleep(0.05)
        return arrays, meta

    thread = threading.Thread(target=lambda: run(slow_edge))
    thread.start()
    wait_until(lambda: not thread.is_alive())
