"""Known-bad fixture for the sleep-discipline checker.

Naps used as synchronization: at module level and directly inside a test
body — both are timing guesses that flake under load.
"""

import time
from time import sleep

time.sleep(0.1)  # module-level nap while "waiting" for a fixture server


def test_server_came_up(server):
    server.start()
    time.sleep(0.5)  # hope half a second is enough for the bind
    assert server.running


def test_from_imported_sleep(worker):
    worker.submit(1)
    sleep(0.2)  # bare from-import is the same anti-pattern
    assert worker.done
