"""Known-clean message-kind fixture: named constants everywhere.

The test scans this with constants ``KIND_FRAME``/``KIND_STOP`` declared,
so both must register as dispatched and nothing is flagged — including the
``dtype.kind`` access, which is a numpy dtype code, not a wire kind.
"""

KIND_FRAME = "frame"
KIND_STOP = "stop"


class Message:
    def __init__(self, kind=None, frame_id=0):
        self.kind = kind
        self.frame_id = frame_id


def produce(frame_id):
    return Message(kind=KIND_FRAME, frame_id=frame_id)


def dispatch(message):
    if message.kind == KIND_STOP:
        return None
    if message.kind == KIND_FRAME:
        return message
    return None


def is_integer(x):
    return x.dtype.kind in "iu"  # dtype kind code: exempt
