"""Known-bad dtype fixture: bare float scalars in kernel-style array math."""

import numpy as np


def halve(x):
    return x * 0.5  # bare float binop with an array


def clamp(out):
    np.maximum(out, 0.0, out=out)  # bare float into a dtype-sensitive ufunc
    return out
