"""Known-clean layering fixture: stdlib plus the allowlisted module only.

Scanned with allowlist ``{"numpy"}``; the TYPE_CHECKING import must be
ignored even though it names an upper tier.
"""

import os
import sys
from typing import TYPE_CHECKING

import numpy as np  # noqa: F401  — explicitly allowlisted

if TYPE_CHECKING:  # never executes: exempt from layering
    from repro.serving.app import serve  # noqa: F401

_ = (os, sys)
