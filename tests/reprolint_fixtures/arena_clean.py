"""Known-clean arena fixture: results are copied out (or never pooled)."""

import numpy as np


def execute_out(run, shape, dtype):
    out = run.arena.take("slot", shape, dtype)
    out[:] = 0
    out = out.copy()  # detached from the arena before escaping
    return out


def execute_fresh(shape, dtype):
    out = np.empty(shape, dtype=dtype)  # never pooled: free to return
    return out


def execute_state(run, shape, dtype):
    run.x = run.arena.take("slot", shape, dtype)
    return run  # returning the state container is the dynamic contract's job
