"""Known-bad arena fixture: pooled buffers escape their plan uncopied."""


def execute(run, shape, dtype):
    out = run.arena.take("slot", shape, dtype)
    out[:] = 0
    return out  # aliases the arena: the next frame overwrites it


def execute_direct(arena, shape, dtype):
    return arena.take("slot", shape, dtype)  # returned straight from take


def execute_view(self, shape, dtype):
    buf = self.arena.take("slot", shape, dtype)
    head = buf[:1]  # views alias the buffer: taint propagates
    return head
