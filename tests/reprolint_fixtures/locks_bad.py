"""Known-bad lock fixture: a counter written both under and outside a lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # __init__ writes never count: construction-time

    def increment(self):
        with self._lock:
            self._count += 1

    def reset(self):
        self._count = 0  # bare write racing increment() — must be flagged
