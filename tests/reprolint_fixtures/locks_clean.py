"""Known-clean lock fixture: every shared write holds a lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._count = 0
        self._sent = 0

    def increment(self):
        with self._lock:
            self._count += 1

    def reset(self):
        with self._lock:
            self._count = 0

    def _drain_locked(self):
        # *_locked naming convention: caller holds the lock already.
        self._count = 0

    def record_send(self):
        with self._send_lock:  # any of the class's own locks counts
            self._sent += 1
