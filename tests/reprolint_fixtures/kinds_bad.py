"""Known-bad message-kind fixture: raw literals at produce/dispatch sites."""


class Message:
    def __init__(self, kind=None, frame_id=0):
        self.kind = kind
        self.frame_id = frame_id


def produce(frame_id):
    return Message(kind="frame", frame_id=frame_id)  # raw known kind


def produce_typo(frame_id):
    return Message(kind="framee", frame_id=frame_id)  # raw UNKNOWN kind


def dispatch(message):
    if message.kind == "stop":  # raw literal compared against .kind
        return None
    if message.kind in ("result", "error"):  # raw literals in membership
        return message
    return None
