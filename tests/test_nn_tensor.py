"""Autograd correctness tests: analytic gradients vs numerical differentiation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.tensor import Tensor, concat, stack, where, maximum


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x.copy())
        flat[i] = original - eps
        lower = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient of ``build`` against numerical gradient."""
    tensor = Tensor(x.copy(), requires_grad=True)
    out = build(tensor)
    out.backward()
    analytic = tensor.grad

    def scalar_fn(values: np.ndarray) -> float:
        return float(build(Tensor(values)).data)

    numeric = numerical_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_backward(self):
        check_gradient(lambda t: (t + 3.0).sum(), np.random.default_rng(0).standard_normal((3, 4)))

    def test_mul_backward(self):
        rng = np.random.default_rng(1)
        other = rng.standard_normal((3, 4))
        check_gradient(lambda t: (t * Tensor(other)).sum(), rng.standard_normal((3, 4)))

    def test_sub_and_neg(self):
        rng = np.random.default_rng(2)
        check_gradient(lambda t: (5.0 - (-t)).sum(), rng.standard_normal((2, 3)))

    def test_div_backward(self):
        rng = np.random.default_rng(3)
        denom = np.abs(rng.standard_normal((2, 3))) + 1.0
        check_gradient(lambda t: (t / Tensor(denom)).sum(), rng.standard_normal((2, 3)))

    def test_pow_backward(self):
        rng = np.random.default_rng(4)
        check_gradient(lambda t: (t ** 3).sum(), rng.standard_normal((3, 3)))

    def test_matmul_backward(self):
        rng = np.random.default_rng(5)
        other = rng.standard_normal((4, 2))
        check_gradient(lambda t: t.matmul(Tensor(other)).sum(),
                       rng.standard_normal((3, 4)))

    def test_matmul_grad_for_second_operand(self):
        rng = np.random.default_rng(6)
        a = Tensor(rng.standard_normal((3, 4)))
        b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        (a.matmul(b)).sum().backward()
        expected = a.data.T @ np.ones((3, 2))
        np.testing.assert_allclose(b.grad, expected, atol=1e-10)

    def test_broadcasting_add_bias(self):
        rng = np.random.default_rng(7)
        bias = Tensor(rng.standard_normal(4), requires_grad=True)
        x = Tensor(rng.standard_normal((5, 4)))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 5.0))


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_unary_gradients(self, name):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((3, 3)) + 0.1  # avoid the ReLU kink at 0
        check_gradient(lambda t: getattr(t, name)().sum(), x)

    def test_log_gradient(self):
        rng = np.random.default_rng(9)
        x = np.abs(rng.standard_normal((3, 3))) + 0.5
        check_gradient(lambda t: t.log().sum(), x)

    def test_leaky_relu_negative_slope(self):
        x = Tensor(np.array([[-2.0, 3.0]]), requires_grad=True)
        out = x.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [[-0.2, 3.0]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0.1, 1.0]])

    def test_clip_gradient_masks_out_of_range(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShape:
    def test_sum_axis_gradient(self):
        rng = np.random.default_rng(10)
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(),
                       rng.standard_normal((4, 3)))

    def test_mean_gradient(self):
        rng = np.random.default_rng(11)
        check_gradient(lambda t: t.mean(), rng.standard_normal((4, 5)))

    def test_max_axis_gradient_flows_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        expected = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        np.testing.assert_allclose(x.grad, expected)

    def test_min_matches_numpy(self):
        rng = np.random.default_rng(12)
        data = rng.standard_normal((3, 4))
        np.testing.assert_allclose(Tensor(data).min(axis=1).data, data.min(axis=1))

    def test_reshape_transpose_roundtrip_gradient(self):
        rng = np.random.default_rng(13)
        check_gradient(lambda t: (t.reshape(6, 2).transpose() ** 2).sum(),
                       rng.standard_normal((3, 4)))

    def test_getitem_gradient_accumulates(self):
        x = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        picked = x[np.array([0, 0, 2])]
        picked.sum().backward()
        np.testing.assert_allclose(x.grad, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_gather_rows_matches_indexing(self):
        rng = np.random.default_rng(14)
        data = rng.standard_normal((5, 3))
        idx = np.array([4, 0, 2, 2])
        np.testing.assert_allclose(Tensor(data).gather_rows(idx).data, data[idx])


class TestGraphMechanics:
    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))

    def test_no_grad_disables_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with nn.no_grad():
            y = (x * 2).sum()
        assert y.requires_grad is False
        assert nn.is_grad_enabled() is True

    def test_no_grad_is_thread_local(self):
        """One thread's no_grad must not disable grads in another thread."""
        import threading

        entered, release = threading.Event(), threading.Event()
        grad_after_exit = []

        def hold_no_grad():
            with nn.no_grad():
                entered.set()
                release.wait(timeout=5.0)
            grad_after_exit.append(nn.is_grad_enabled())

        worker = threading.Thread(target=hold_no_grad)
        worker.start()
        assert entered.wait(timeout=5.0)
        # The worker sits inside no_grad; this thread is unaffected.
        assert nn.is_grad_enabled() is True
        x = Tensor(np.ones(2), requires_grad=True)
        assert (x * 2).sum().requires_grad is True
        release.set()
        worker.join(timeout=5.0)
        assert grad_after_exit == [True]

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x.detach() * 2).sum()
        assert y.requires_grad is False

    def test_diamond_graph_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3
        b = x * 4
        (a * b).sum().backward()  # d/dx (12 x^2) = 24 x
        np.testing.assert_allclose(x.grad, [48.0])

    def test_zero_grad_resets(self):
        x = Tensor(np.ones(2), requires_grad=True)
        x.sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestFreeFunctions:
    def test_concat_gradient_split(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        concat([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 2) and b.grad.shape == (2, 3)
        np.testing.assert_allclose(a.grad, 1.0)
        np.testing.assert_allclose(b.grad, 1.0)

    def test_stack_shapes(self):
        a, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)

    def test_where_routes_gradient(self):
        a = Tensor(np.ones(4), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        condition = np.array([True, False, True, False])
        where(condition, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0, 1, 0])
        np.testing.assert_allclose(b.grad, [0, 1, 0, 1])

    def test_maximum_matches_numpy(self):
        rng = np.random.default_rng(15)
        a, b = rng.standard_normal(5), rng.standard_normal(5)
        np.testing.assert_allclose(maximum(Tensor(a), Tensor(b)).data,
                                   np.maximum(a, b))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=12))
def test_sum_linearity_property(values):
    """Property: grad of sum(c*x) w.r.t. x equals c everywhere."""
    x = Tensor(np.asarray(values), requires_grad=True)
    (x * 2.5).sum().backward()
    np.testing.assert_allclose(x.grad, np.full(len(values), 2.5))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
def test_matmul_shape_property(n, m):
    """Property: (n,m) @ (m,1) yields shape (n,1) and correct values."""
    rng = np.random.default_rng(n * 10 + m)
    a, b = rng.standard_normal((n, m)), rng.standard_normal((m, 1))
    out = Tensor(a).matmul(Tensor(b))
    assert out.shape == (n, 1)
    np.testing.assert_allclose(out.data, a @ b)
