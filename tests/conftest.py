"""Shared fixtures: tiny datasets, profiles, systems and serving helpers.

Everything is deliberately small (few points, few classes, few layers) so the
whole suite runs quickly; the benchmarks exercise the larger paper-scale
configurations.

Serving tests get three anti-flake helpers (see ``docs/testing.md``):

``free_port()`` / the ``free_port`` fixture
    An OS-assigned ephemeral port for tests that must know a port *before*
    binding it (proxies, cluster configs).  Components that bind their own
    socket should keep using ``port=0`` and read the bound port back.
``served_app``
    Factory fixture building a *started* ``ServingApp`` (and stopping every
    app it built at teardown, pass-or-fail) — no hand-rolled listeners, no
    sleep-until-probably-up.
``wait_until``
    Bounded condition polling that raises with a description on timeout —
    the replacement for bare ``while: sleep()`` loops that hang forever
    when the condition never comes true.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time

import numpy as np
import pytest

from repro.graph import SyntheticModelNet40, SyntheticMR, stratified_split
from repro.hardware import (DataProfile, JETSON_TX2, RASPBERRY_PI_4B, INTEL_I7,
                            NVIDIA_1060, LINK_40MBPS, LINK_10MBPS)
from repro.core import DesignSpace
from repro.system import CoInferenceSimulator, SystemConfig

#: Per-test wall-clock cap (seconds) applied when pytest-timeout is
#: installed: a deadlocked socket test must fail, not hang the whole job.
#: Individual tests override with an explicit ``@pytest.mark.timeout``.
DEFAULT_TEST_TIMEOUT_S = 120


def pytest_collection_modifyitems(config, items):
    if not config.pluginmanager.hasplugin("timeout"):
        # pytest-timeout is CI tooling, not a hard dependency — without it
        # the suite runs exactly as before (no cap).
        return
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(DEFAULT_TEST_TIMEOUT_S))


def free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port the OS just handed out (and we released).

    For components that need an address *before* they can bind (e.g. a
    ClusterConfig naming a proxy that is not up yet).  The tiny window
    between release and reuse is the reason components that *can* bind
    ``port=0`` themselves should — this helper is for the rest, and is
    still immune to the classic collision source (two tests hard-coding
    the same number).
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


@pytest.fixture(name="free_port")
def free_port_fixture():
    """Fixture twin of :func:`free_port` (call it for more ports)."""
    return free_port()


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01,
               message: str = "condition"):
    """Poll ``predicate`` until truthy; raise ``TimeoutError`` otherwise.

    Returns the predicate's (truthy) value so callers can assert on it.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise TimeoutError(f"{message} not met within {timeout:.1f}s")
        time.sleep(interval)


@pytest.fixture(name="wait_until")
def wait_until_fixture():
    return wait_until


@contextlib.contextmanager
def fake_peer(handler):
    """A throwaway localhost listener whose job is to misbehave.

    ``handler(conn)`` runs once on the first accepted connection — slam it
    shut, feed it garbage, go silent — for tests of how clients survive a
    broken peer.  Yields ``(host, port)``; the listener, the connection and
    the handler thread are torn down on exit, pass or fail.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def accept_and_handle():
        try:
            conn, _ = listener.accept()
        except OSError:
            return
        try:
            handler(conn)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    thread = threading.Thread(target=accept_and_handle, daemon=True)
    thread.start()
    try:
        yield listener.getsockname()
    finally:
        listener.close()
        thread.join(timeout=5.0)


@pytest.fixture
def served_app():
    """Factory for started ``ServingApp``s, all stopped at teardown.

    Usage::

        def test_something(served_app):
            app = served_app(zoo, config, in_dim=3, num_classes=3)
            with app.client(model="m") as client: ...

    The app binds ``port=0`` (the OS picks a free port — no collisions)
    and teardown stops every app the test built even when it failed, so a
    crashed assertion can never leak a listening socket into later tests.
    """
    from repro.serving import serve

    apps = []

    def factory(zoo, config=None, **kwargs):
        app = serve(zoo, config, **kwargs)
        apps.append(app)
        return app

    yield factory
    for app in reversed(apps):
        app.stop()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_modelnet():
    """5-class, 32-point synthetic ModelNet with a train/val/test split."""
    dataset = SyntheticModelNet40(num_points=32, samples_per_class=6,
                                  num_classes=5, seed=0)
    return stratified_split(dataset.generate(), 0.6, 0.2, seed=0)


@pytest.fixture(scope="session")
def tiny_mr():
    """Small synthetic MR split (2 classes, ~17 nodes, 64-dim features)."""
    dataset = SyntheticMR(num_documents=40, feature_dim=64, mean_nodes=12, seed=0)
    return stratified_split(dataset.generate(), 0.6, 0.2, seed=0)


@pytest.fixture(scope="session")
def modelnet_profile():
    return DataProfile.modelnet40(num_points=32, num_classes=5)


@pytest.fixture(scope="session")
def mr_profile():
    return DataProfile.mr(num_words=12, feature_dim=64)


@pytest.fixture(scope="session")
def paper_modelnet_profile():
    """Full-scale ModelNet profile used for hardware-model calibration tests."""
    return DataProfile.modelnet40()


@pytest.fixture(scope="session")
def tx2_i7_system():
    return SystemConfig(device=JETSON_TX2, edge=INTEL_I7, link=LINK_40MBPS)


@pytest.fixture(scope="session")
def pi_1060_system():
    return SystemConfig(device=RASPBERRY_PI_4B, edge=NVIDIA_1060, link=LINK_40MBPS)


@pytest.fixture(scope="session")
def tx2_i7_simulator(tx2_i7_system):
    return CoInferenceSimulator(tx2_i7_system)


@pytest.fixture
def modelnet_space(modelnet_profile):
    return DesignSpace(num_layers=6, profile=modelnet_profile,
                       combine_widths=(16, 32, 64), k_choices=(4, 8),
                       max_communicates=2)


@pytest.fixture
def mr_space(mr_profile):
    return DesignSpace(num_layers=5, profile=mr_profile,
                       combine_widths=(16, 32), k_choices=(4,),
                       max_communicates=2)
