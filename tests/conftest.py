"""Shared fixtures: tiny datasets, profiles and system configurations.

Everything is deliberately small (few points, few classes, few layers) so the
whole suite runs quickly; the benchmarks exercise the larger paper-scale
configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import SyntheticModelNet40, SyntheticMR, stratified_split
from repro.hardware import (DataProfile, JETSON_TX2, RASPBERRY_PI_4B, INTEL_I7,
                            NVIDIA_1060, LINK_40MBPS, LINK_10MBPS)
from repro.core import DesignSpace
from repro.system import CoInferenceSimulator, SystemConfig


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_modelnet():
    """5-class, 32-point synthetic ModelNet with a train/val/test split."""
    dataset = SyntheticModelNet40(num_points=32, samples_per_class=6,
                                  num_classes=5, seed=0)
    return stratified_split(dataset.generate(), 0.6, 0.2, seed=0)


@pytest.fixture(scope="session")
def tiny_mr():
    """Small synthetic MR split (2 classes, ~17 nodes, 64-dim features)."""
    dataset = SyntheticMR(num_documents=40, feature_dim=64, mean_nodes=12, seed=0)
    return stratified_split(dataset.generate(), 0.6, 0.2, seed=0)


@pytest.fixture(scope="session")
def modelnet_profile():
    return DataProfile.modelnet40(num_points=32, num_classes=5)


@pytest.fixture(scope="session")
def mr_profile():
    return DataProfile.mr(num_words=12, feature_dim=64)


@pytest.fixture(scope="session")
def paper_modelnet_profile():
    """Full-scale ModelNet profile used for hardware-model calibration tests."""
    return DataProfile.modelnet40()


@pytest.fixture(scope="session")
def tx2_i7_system():
    return SystemConfig(device=JETSON_TX2, edge=INTEL_I7, link=LINK_40MBPS)


@pytest.fixture(scope="session")
def pi_1060_system():
    return SystemConfig(device=RASPBERRY_PI_4B, edge=NVIDIA_1060, link=LINK_40MBPS)


@pytest.fixture(scope="session")
def tx2_i7_simulator(tx2_i7_system):
    return CoInferenceSimulator(tx2_i7_system)


@pytest.fixture
def modelnet_space(modelnet_profile):
    return DesignSpace(num_layers=6, profile=modelnet_profile,
                       combine_widths=(16, 32, 64), k_choices=(4, 8),
                       max_communicates=2)


@pytest.fixture
def mr_space(mr_profile):
    return DesignSpace(num_layers=5, profile=mr_profile,
                       combine_widths=(16, 32), k_choices=(4,),
                       max_communicates=2)
