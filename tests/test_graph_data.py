"""Tests for graph containers, batching, loaders, KNN and sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (Batch, DataLoader, GraphData, farthest_point_sample,
                         knn_graph, knn_indices, pairwise_sq_distances,
                         random_graph, random_sample, subsample_graph_nodes)


class TestGraphData:
    def test_basic_properties(self):
        g = GraphData(x=np.ones((5, 3)), edge_index=np.array([[0, 1], [1, 2]]), y=2)
        assert g.num_nodes == 5 and g.num_features == 3 and g.num_edges == 2

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            GraphData(x=np.ones(5))

    def test_rejects_bad_edge_index_shape(self):
        with pytest.raises(ValueError):
            GraphData(x=np.ones((3, 2)), edge_index=np.array([0, 1, 2]))

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            GraphData(x=np.ones((2, 2)), edge_index=np.array([[0], [5]]))

    def test_pos_must_match_node_count(self):
        with pytest.raises(ValueError):
            GraphData(x=np.ones((3, 2)), pos=np.ones((2, 3)))

    def test_copy_is_independent(self):
        g = GraphData(x=np.ones((3, 2)), y=1)
        clone = g.copy()
        clone.x[0, 0] = 99.0
        assert g.x[0, 0] == 1.0

    def test_nbytes_counts_all_arrays(self):
        g = GraphData(x=np.ones((4, 2)), edge_index=np.zeros((2, 3), dtype=np.int64),
                      pos=np.ones((4, 3)))
        assert g.nbytes() == g.x.nbytes + g.edge_index.nbytes + g.pos.nbytes


class TestBatch:
    def test_offsets_edge_indices(self):
        g1 = GraphData(x=np.ones((3, 2)), edge_index=np.array([[0, 1], [1, 2]]), y=0)
        g2 = GraphData(x=np.ones((2, 2)), edge_index=np.array([[0], [1]]), y=1)
        batch = Batch.from_graphs([g1, g2])
        assert batch.num_nodes == 5 and batch.num_graphs == 2
        np.testing.assert_array_equal(batch.edge_index[:, -1], [3, 4])
        np.testing.assert_array_equal(batch.batch, [0, 0, 0, 1, 1])
        np.testing.assert_array_equal(batch.y, [0, 1])

    def test_nodes_per_graph(self):
        graphs = [GraphData(x=np.ones((n, 1)), y=0) for n in (2, 5, 3)]
        batch = Batch.from_graphs(graphs)
        np.testing.assert_array_equal(batch.nodes_per_graph(), [2, 5, 3])

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            Batch.from_graphs([])

    def test_batch_vector_length_validation(self):
        with pytest.raises(ValueError):
            Batch(x=np.ones((3, 1)), edge_index=None, batch=np.zeros(2), num_graphs=1)


class TestDataLoader:
    def _graphs(self, count=10):
        return [GraphData(x=np.full((2, 2), i, dtype=float), y=i % 2)
                for i in range(count)]

    def test_batches_cover_dataset(self):
        loader = DataLoader(self._graphs(10), batch_size=3)
        sizes = [batch.num_graphs for batch in loader]
        assert sizes == [3, 3, 3, 1]
        assert len(loader) == 4

    def test_drop_last(self):
        loader = DataLoader(self._graphs(10), batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert all(batch.num_graphs == 3 for batch in loader)

    def test_shuffle_is_deterministic_per_seed(self):
        first = [b.y.tolist() for b in DataLoader(self._graphs(), 4, shuffle=True, seed=3)]
        second = [b.y.tolist() for b in DataLoader(self._graphs(), 4, shuffle=True, seed=3)]
        assert first == second

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._graphs(), batch_size=0)


class TestKNN:
    def test_pairwise_distances_match_numpy(self):
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((6, 3))
        dists = pairwise_sq_distances(pts)
        expected = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1)
        np.testing.assert_allclose(dists, expected, atol=1e-9)

    def test_knn_indices_find_true_neighbours(self):
        pts = np.array([[0.0], [0.1], [5.0], [5.1]])
        idx = knn_indices(pts, 1)
        np.testing.assert_array_equal(idx.reshape(-1), [1, 0, 3, 2])

    def test_knn_graph_shape_and_no_self_loops(self):
        rng = np.random.default_rng(1)
        pts = rng.standard_normal((20, 3))
        edges = knn_graph(pts, 4)
        assert edges.shape == (2, 80)
        assert not np.any(edges[0] == edges[1])

    def test_knn_graph_respects_batch_boundaries(self):
        pts = np.vstack([np.zeros((5, 2)), np.ones((5, 2)) * 100])
        batch = np.array([0] * 5 + [1] * 5)
        edges = knn_graph(pts + np.random.default_rng(2).normal(0, 0.1, pts.shape),
                          2, batch=batch)
        # Neighbours of nodes 0-4 must also be 0-4, and similarly for 5-9.
        for src, dst in edges.T:
            assert (src < 5) == (dst < 5)

    def test_knn_indices_match_full_sort(self):
        """The argpartition fast path selects the same neighbours as argsort."""
        rng = np.random.default_rng(7)
        pts = rng.standard_normal((40, 3))
        for k in (1, 5, 9):
            idx = knn_indices(pts, k)
            dists = pairwise_sq_distances(pts)
            np.fill_diagonal(dists, np.inf)
            expected = np.argsort(dists, axis=1)[:, :k]
            np.testing.assert_array_equal(idx, expected)

    def test_knn_indices_ordered_nearest_first(self):
        rng = np.random.default_rng(8)
        pts = rng.standard_normal((25, 2))
        idx = knn_indices(pts, 6)
        dists = pairwise_sq_distances(pts)
        picked = np.take_along_axis(dists, idx, axis=1)
        assert (np.diff(picked, axis=1) >= 0).all()

    def test_knn_indices_include_self_when_not_excluded(self):
        pts = np.array([[0.0], [1.0], [2.0]])
        idx = knn_indices(pts, 1, exclude_self=False)
        np.testing.assert_array_equal(idx.reshape(-1), [0, 1, 2])

    def test_k_larger_than_graph_repeats_neighbours(self):
        pts = np.array([[0.0], [1.0]])
        edges = knn_graph(pts, 5)
        assert edges.shape == (2, 10)

    def test_empty_input(self):
        assert knn_graph(np.zeros((0, 3)), 3).shape == (2, 0)

    def test_random_graph_in_degree(self):
        edges = random_graph(10, 3, rng=np.random.default_rng(0))
        in_degree = np.bincount(edges[1], minlength=10)
        np.testing.assert_array_equal(in_degree, np.full(10, 3))


class TestSampling:
    def test_random_sample_unique_and_sorted(self):
        idx = random_sample(50, 10, rng=np.random.default_rng(0))
        assert len(np.unique(idx)) == 10
        assert (np.diff(idx) > 0).all()

    def test_random_sample_caps_at_population(self):
        np.testing.assert_array_equal(random_sample(5, 10), np.arange(5))

    def test_fps_spreads_points(self):
        # Two clusters far apart: FPS with 2 samples must take one from each.
        pts = np.vstack([np.zeros((10, 2)), np.full((10, 2), 100.0)])
        idx = farthest_point_sample(pts, 2, rng=np.random.default_rng(0))
        assert (idx < 10).sum() == 1 and (idx >= 10).sum() == 1

    def test_subsample_ratio_validation(self):
        with pytest.raises(ValueError):
            subsample_graph_nodes(10, 0.0)
        assert len(subsample_graph_nodes(10, 0.5)) == 5


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=3, max_value=30), st.integers(min_value=1, max_value=4))
def test_knn_graph_degree_property(num_points, k):
    """Property: every node receives exactly k incoming edges."""
    rng = np.random.default_rng(num_points * 13 + k)
    pts = rng.standard_normal((num_points, 3))
    edges = knn_graph(pts, k)
    in_degree = np.bincount(edges[1], minlength=num_points)
    assert (in_degree == k).all()
