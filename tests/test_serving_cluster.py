"""Multi-node cluster tier: correctness across the network boundary.

The cluster tier moves every engine call onto TCP replica nodes, so each
serving guarantee must be re-pinned across that boundary — and, unlike the
in-box shard tier, the transport can now *misbehave* rather than just die.
The chaosnet proxy (``tests/chaosnet.py``) sits between router and node to
inject each failure mode deterministically:

* cluster-served logits are numerically equivalent (<= 1e-9) to in-process
  serving, across aggregator x pool zoo entries;
* a publish returns only after every live node acknowledged the snapshot
  (ack held back => publish provably still waiting, local version unswapped);
* a killed or partitioned node fails its in-flight frames fast with
  ``NodeCrashedError`` (a ``ConnectionError``) while new traffic reroutes —
  and with ``reconnect_s`` set, a healed node rejoins with a re-synced
  snapshot;
* the chaosnet primitives themselves (drop, delay, truncate, duplicate,
  reorder, partition) are pinned against a plain echo peer at the bottom,
  driven by the injected clock — no wall-clock sleeps.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np
import pytest

from chaosnet import ChaosProxy, ManualClock
from conftest import wait_until
from repro.core import (Architecture, ArchitectureModel, ArchitectureZoo,
                        ZooEntry)
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.runtime.node import NodeCrashedError, NodeProcess
from repro.serving import (BatchingConfig, ClusterConfig, ModelRepository,
                           ServingConfig, ShardingConfig, serve)
from repro.serving.cluster import ClusterPool

pytestmark = pytest.mark.cluster


def _arch(name: str, k: int, width: int, aggregate: str = "max",
          pool: str = "max||mean") -> Architecture:
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=k),
        OpSpec(OpType.AGGREGATE, aggregate),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.COMBINE, width),
        OpSpec(OpType.GLOBAL_POOL, pool),
    ), name=name)


ZOO_V1 = ArchitectureZoo([ZooEntry("m", _arch("m", k=4, width=16),
                                   0.9, 40.0, 0.4)])
ZOO_V2 = ArchitectureZoo([ZooEntry("m", _arch("m", k=8, width=32),
                                   0.93, 55.0, 0.5)])

#: One entry per aggregator x pooling combination the design space uses.
MATRIX_ZOO = ArchitectureZoo([
    ZooEntry(f"{aggregate}-{pool}".replace("||", ""),
             _arch(f"{aggregate}-{pool}".replace("||", ""), k=4, width=16,
                   aggregate=aggregate, pool=pool),
             0.9, 40.0, 0.4)
    for aggregate in ("max", "mean", "add")
    for pool in ("max", "mean", "max||mean")
])


def _frames(count: int = 4):
    graphs = SyntheticModelNet40(num_points=24, samples_per_class=2,
                                 num_classes=3, seed=1).generate()
    return [Batch.from_graphs([graphs[i % len(graphs)]]) for i in range(count)]


def _reference_logits(zoo: ArchitectureZoo, name: str, frames) -> list:
    model = ArchitectureModel(zoo.get(name).architecture, in_dim=3,
                              num_classes=3, seed=0)
    return [model(frame).data for frame in frames]


#: Heartbeats effectively off: fault-scripting tests must own every frame
#: on the wire (a ping stealing a scripted drop/delay would be a race).
NO_HEARTBEAT_MS = 600_000.0


def _cluster_config(*addresses, **kwargs) -> ServingConfig:
    return ServingConfig(cluster=ClusterConfig(nodes=tuple(addresses),
                                               **kwargs))


@pytest.fixture
def two_nodes():
    with NodeProcess(0) as first, NodeProcess(1) as second:
        yield first, second


@pytest.fixture
def one_node():
    with NodeProcess(0) as node:
        yield node


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestClusterConfig:
    def test_defaults_disabled(self):
        config = ClusterConfig()
        assert config.nodes == () and not config.enabled

    def test_validation(self):
        with pytest.raises(ValueError, match="host:port"):
            ClusterConfig(nodes=("localhost",))
        with pytest.raises(ValueError, match="port"):
            ClusterConfig(nodes=("localhost:notaport",))
        with pytest.raises(ValueError, match="port"):
            ClusterConfig(nodes=("localhost:70000",))
        with pytest.raises(ValueError, match="single string"):
            ClusterConfig(nodes="localhost:9000")
        with pytest.raises(ValueError, match="duplicate"):
            ClusterConfig(nodes=("h:9000", "h:9000"))
        with pytest.raises(ValueError, match="routing"):
            ClusterConfig(nodes=("h:9000",), routing="dartboard")
        with pytest.raises(ValueError, match="heartbeat_ms"):
            ClusterConfig(nodes=("h:9000",), heartbeat_ms=0.0)
        with pytest.raises(ValueError, match="heartbeat_misses"):
            ClusterConfig(nodes=("h:9000",), heartbeat_misses=0)
        with pytest.raises(ValueError, match="reconnect_s"):
            ClusterConfig(nodes=("h:9000",), reconnect_s=0.0)

    def test_round_trip(self):
        config = ServingConfig(cluster=ClusterConfig(
            nodes=("a:9000", "b:9001"), routing="hash", heartbeat_ms=250.0,
            heartbeat_misses=5, reconnect_s=2.0))
        rebuilt = ServingConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.cluster.nodes == ("a:9000", "b:9001")
        assert rebuilt.cluster.enabled

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="ClusterConfig"):
            ClusterConfig.from_dict({"nodes": ["h:9000"], "nodez": []})

    def test_mutually_exclusive_with_sharding(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ServingConfig(sharding=ShardingConfig(num_shards=2),
                          cluster=ClusterConfig(nodes=("h:9000",)))

    def test_pool_rejects_empty_config(self):
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        with pytest.raises(ValueError, match="node address"):
            ClusterPool(repo, ClusterConfig())


# ----------------------------------------------------------------------
# Numerical equivalence: cluster-served == in-process == direct model
# ----------------------------------------------------------------------
class TestClusterEquivalence:
    def test_matrix_zoo_equivalent_to_in_process(self, two_nodes):
        """Every aggregator x pool entry: node logits == eager <= 1e-9."""
        first, second = two_nodes
        frames = _frames(3)
        with serve(MATRIX_ZOO, _cluster_config(first.address, second.address),
                   in_dim=3, num_classes=3) as app:
            assert app.clustered and app.cluster_pool.live_count() == 2
            assert not app.sharded
            for name in MATRIX_ZOO.names():
                expected = _reference_logits(MATRIX_ZOO, name, frames)
                with app.client(model=name) as client:
                    results, _ = client.run(frames)
                for result, reference in zip(results, expected):
                    np.testing.assert_allclose(result.arrays["logits"],
                                               reference, atol=1e-9)
            stats = app.stats()
            assert stats.num_nodes == 2 and stats.num_shards == 0
            # The least-loaded router actually used both machines.
            assert all(node.frames > 0 for node in stats.nodes)
            assert sum(node.frames for node in stats.nodes) == \
                stats.frames_processed
            assert all(node.snapshot_version == 1 for node in stats.nodes)

    def test_batched_cluster_serving_equivalent(self, two_nodes):
        """Micro-batches executed on nodes match per-frame references."""
        first, second = two_nodes
        frames = _frames(4)
        expected = _reference_logits(ZOO_V1, "m", frames)
        config = ServingConfig(
            cluster=ClusterConfig(nodes=(first.address, second.address)),
            batching=BatchingConfig(max_batch_size=4, max_wait_ms=5.0))
        outputs = [[] for _ in range(3)]
        with serve(ZOO_V1, config, in_dim=3, num_classes=3) as app:
            def stream(index):
                with app.client(model="m", name=f"c{index}") as client:
                    results, _ = client.run(frames)
                    outputs[index] = results

            threads = [threading.Thread(target=stream, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            stats = app.stats()
        for results in outputs:
            assert len(results) == len(frames)
            for result, reference in zip(results, expected):
                np.testing.assert_allclose(result.arrays["logits"],
                                           reference, atol=1e-9)
        assert stats.batches_dispatched > 0
        assert stats.batch_fallback_frames == 0

    def test_hash_routing_pins_an_entry_to_one_node(self, two_nodes):
        first, second = two_nodes
        frames = _frames(4)
        with serve(ZOO_V1, _cluster_config(first.address, second.address,
                                           routing="hash"),
                   in_dim=3, num_classes=3) as app:
            with app.client(model="m") as client:
                client.run(frames)
            served = [node.frames for node in app.cluster_pool.stats()]
        # Consistent hashing: one owner per entry, not a spread.
        assert sorted(served) == [0, len(frames)]


# ----------------------------------------------------------------------
# Fleet-wide atomic publish (the pre-swap preparer contract)
# ----------------------------------------------------------------------
class TestClusterPublish:
    def test_publish_replicates_before_swap(self, two_nodes):
        """After publish() returns, every node already holds the snapshot."""
        first, second = two_nodes
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        with serve(ZOO_V1, _cluster_config(first.address, second.address),
                   in_dim=3, num_classes=3, repository=repo) as app:
            assert [n.snapshot_version for n in app.cluster_pool.stats()] == \
                [1, 1]
            repo.publish(ZOO_V2)
            assert [n.snapshot_version for n in app.cluster_pool.stats()] == \
                [2, 2]
            frames = _frames(2)
            expected = _reference_logits(ZOO_V2, "m", frames)
            with app.client(model="m") as client:
                results, _ = client.run(frames)
            for result, reference in zip(results, expected):
                np.testing.assert_allclose(result.arrays["logits"],
                                           reference, atol=1e-9)

    def test_publish_blocks_until_node_acks(self, one_node):
        """Hold the publish envelope: the local swap provably waits for it."""
        clock = ManualClock()
        with ChaosProxy("127.0.0.1", one_node.port, clock=clock) as proxy:
            repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
            with serve(ZOO_V1,
                       _cluster_config(proxy.address,
                                       heartbeat_ms=NO_HEARTBEAT_MS),
                       in_dim=3, num_classes=3, repository=repo) as app:
                proxy.client_to_server.delay_next(30.0)
                done = threading.Event()

                def publish():
                    repo.publish(ZOO_V2)
                    done.set()

                thread = threading.Thread(target=publish)
                thread.start()
                try:
                    # The publish envelope is held by the proxy: the node
                    # cannot have acked, so publish() must still be waiting
                    # and the router-side repository must NOT have swapped.
                    wait_until(lambda: proxy.client_to_server.held_frames()
                               == 1, timeout=15.0,
                               message="publish envelope held by the proxy")
                    assert not done.wait(0.3)
                    assert repo.version == 1
                    assert app.cluster_pool.stats()[0].snapshot_version == 1
                    # Release the envelope: ack flows, swap completes.
                    clock.advance(30.0)
                    assert done.wait(30.0), "publish never completed"
                finally:
                    thread.join(timeout=30.0)
                assert repo.version == 2
                assert app.cluster_pool.stats()[0].snapshot_version == 2

    def test_publish_routes_around_partitioned_node(self, two_nodes):
        """A node that cannot ack is poisoned; survivors get the snapshot."""
        first, second = two_nodes
        with ChaosProxy("127.0.0.1", first.port) as proxy:
            repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
            with serve(ZOO_V1,
                       _cluster_config(proxy.address, second.address,
                                       heartbeat_ms=NO_HEARTBEAT_MS,
                                       publish_timeout_s=0.5),
                       in_dim=3, num_classes=3, repository=repo) as app:
                proxy.partition()
                repo.publish(ZOO_V2)
                stats = app.cluster_pool.stats()
                assert not stats[0].alive, "unacked node must leave routing"
                assert stats[1].alive and stats[1].snapshot_version == 2
                # New traffic serves the new snapshot from the survivor.
                frames = _frames(2)
                expected = _reference_logits(ZOO_V2, "m", frames)
                with app.client(model="m") as client:
                    results, _ = client.run(frames)
                for result, reference in zip(results, expected):
                    np.testing.assert_allclose(result.arrays["logits"],
                                               reference, atol=1e-9)

    def test_publish_aborts_when_no_node_accepts(self, one_node):
        with ChaosProxy("127.0.0.1", one_node.port) as proxy:
            repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
            with serve(ZOO_V1,
                       _cluster_config(proxy.address,
                                       heartbeat_ms=NO_HEARTBEAT_MS,
                                       publish_timeout_s=0.5),
                       in_dim=3, num_classes=3, repository=repo) as app:
                proxy.partition()
                with pytest.raises(RuntimeError, match="aborted"):
                    repo.publish(ZOO_V2)
                # The local repository never swapped to the lost snapshot.
                assert repo.snapshot().version == 1
                assert repo.snapshot().zoo is ZOO_V1
                # Nor did the reconnect bootstrap: a node redialing now
                # must be handed the version the router actually serves,
                # not the aborted one.
                assert app.cluster_pool._hello_meta["version"] == 1


# ----------------------------------------------------------------------
# Client-transparent failover
# ----------------------------------------------------------------------
class TestClusterFailover:
    def test_killed_node_fails_fast_and_traffic_reroutes(self, two_nodes):
        first, second = two_nodes
        frames = _frames(2)
        expected = _reference_logits(ZOO_V1, "m", frames)
        with serve(ZOO_V1, _cluster_config(first.address, second.address),
                   in_dim=3, num_classes=3) as app:
            first.kill()
            # The OS closes the TCP stream with the process: the router's
            # reader notices without waiting for a heartbeat cycle.
            wait_until(lambda: not app.cluster_pool.stats()[0].alive,
                       timeout=10.0, message="node 0 marked dead")
            started = time.monotonic()
            with app.client(model="m") as client:
                results, _ = client.run(frames)
            assert time.monotonic() - started < 10.0
            for result, reference in zip(results, expected):
                np.testing.assert_allclose(result.arrays["logits"],
                                           reference, atol=1e-9)
            stats = app.stats()
            assert [n.alive for n in stats.nodes] == [False, True]
            assert stats.nodes[1].frames == len(frames)

    def test_request_against_killed_node_raises_connection_error(
            self, one_node):
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        pool = ClusterPool(repo, ClusterConfig(nodes=(one_node.address,)))
        pool.start()
        try:
            node = pool._nodes[0]
            arrays, meta = repo.device_fn("m")(_frames(1)[0])
            one_node.kill()
            failures = []

            def request():
                try:
                    node.request_frame("m", arrays, meta)
                except Exception as exc:
                    failures.append(exc)

            thread = threading.Thread(target=request)
            thread.start()
            thread.join(timeout=15.0)
            assert not thread.is_alive(), "in-flight request hung"
            assert len(failures) == 1
            assert isinstance(failures[0], ConnectionError)
            assert isinstance(failures[0], NodeCrashedError)
        finally:
            pool.stop()

    def test_in_flight_frame_fails_fast_when_link_dies(self, one_node):
        """A reply held in the network + a dead link => immediate error."""
        clock = ManualClock()
        with ChaosProxy("127.0.0.1", one_node.port, clock=clock) as proxy:
            repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
            pool = ClusterPool(repo, ClusterConfig(
                nodes=(proxy.address,), heartbeat_ms=NO_HEARTBEAT_MS))
            pool.start()
            try:
                node = pool._nodes[0]
                arrays, meta = repo.device_fn("m")(_frames(1)[0])
                # The node executes the frame but its reply is held.
                proxy.server_to_client.delay_next(600.0)
                failures = []

                def request():
                    try:
                        node.request_frame("m", arrays, meta)
                    except Exception as exc:
                        failures.append(exc)

                thread = threading.Thread(target=request)
                thread.start()
                wait_until(lambda: proxy.server_to_client.held_frames() == 1,
                           timeout=15.0, message="reply held by the proxy")
                # Sever the link with the reply still in flight: the
                # request must fail NOW, not at the request timeout.
                started = time.monotonic()
                proxy.kill_links()
                thread.join(timeout=10.0)
                assert not thread.is_alive(), "in-flight request hung"
                assert time.monotonic() - started < 5.0
                assert len(failures) == 1
                assert isinstance(failures[0], NodeCrashedError)
            finally:
                pool.stop()

    def test_busy_node_survives_aggressive_heartbeats(self, one_node):
        """A node serving a long frame is never declared dead by heartbeat.

        The node answers pings inline in its connection loop, so a long
        engine call legitimately silences the link — pongs and the reply
        all arrive after it finishes.  While requests are in flight the
        router must keep trusting the node (request_timeout_s bounds a
        truly wedged one), even with every miss window long exceeded.
        """
        clock = ManualClock()
        with ChaosProxy("127.0.0.1", one_node.port, clock=clock) as proxy:
            repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
            pool = ClusterPool(repo, ClusterConfig(
                nodes=(proxy.address,), heartbeat_ms=20.0,
                heartbeat_misses=2))
            pool.start()
            try:
                node = pool._nodes[0]
                arrays, meta = repo.device_fn("m")(_frames(1)[0])
                # Hold the node->router flow: the node executes the frame
                # instantly but its reply (and every pong behind it) is
                # parked — indistinguishable from a long engine call.
                proxy.server_to_client.delay_next(600.0)
                outcome = []

                def request():
                    try:
                        outcome.append(("ok",
                                        node.request_frame("m", arrays, meta)))
                    except Exception as exc:
                        outcome.append(("error", exc))

                thread = threading.Thread(target=request)
                thread.start()
                try:
                    wait_until(
                        lambda: proxy.server_to_client.held_frames() == 1,
                        timeout=15.0, message="reply held by the proxy")
                    wait_until(
                        lambda: node.outstanding_pings()
                        >= pool.config.heartbeat_misses,
                        timeout=10.0,
                        message="heartbeat probes piled up unanswered")
                    # Dozens of full miss windows (grace = 40ms) elapse
                    # with the link silent and probes unanswered: a router
                    # that heartbeat-kills busy nodes would do it here.
                    time.sleep(0.5)
                    assert pool.stats()[0].alive, \
                        "busy node was declared dead by heartbeat"
                finally:
                    clock.advance(600.0)
                    thread.join(timeout=30.0)
                assert not thread.is_alive(), "in-flight request hung"
                assert outcome and outcome[0][0] == "ok", outcome
                assert pool.stats()[0].alive
            finally:
                pool.stop()

    def test_partition_detected_by_heartbeats(self, two_nodes):
        first, second = two_nodes
        frames = _frames(2)
        with ChaosProxy("127.0.0.1", first.port) as proxy:
            with serve(ZOO_V1,
                       _cluster_config(proxy.address, second.address,
                                       heartbeat_ms=50.0,
                                       heartbeat_misses=2),
                       in_dim=3, num_classes=3) as app:
                wait_until(
                    lambda: app.cluster_pool.stats()[0].rtt_ms is not None,
                    timeout=10.0, message="first heartbeat answered")
                proxy.partition()
                # Nothing resets the TCP stream — only the heartbeat can
                # tell this node is gone.
                wait_until(lambda: not app.cluster_pool.stats()[0].alive,
                           timeout=10.0,
                           message="partitioned node declared dead")
                with app.client(model="m") as client:
                    results, _ = client.run(frames)
                assert len(results) == len(frames)
                assert app.cluster_pool.stats()[1].frames >= len(frames)

    def test_healed_node_reconnects_with_resynced_snapshot(self, two_nodes):
        first, second = two_nodes
        with ChaosProxy("127.0.0.1", first.port) as proxy:
            repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
            with serve(ZOO_V1,
                       _cluster_config(proxy.address, second.address,
                                       heartbeat_ms=50.0,
                                       heartbeat_misses=2,
                                       reconnect_s=0.1,
                                       publish_timeout_s=1.0),
                       in_dim=3, num_classes=3, repository=repo) as app:
                proxy.partition()
                wait_until(lambda: not app.cluster_pool.stats()[0].alive,
                           timeout=10.0, message="node 0 declared dead")
                # A publish lands while the node is gone: only the
                # survivor acks it.
                repo.publish(ZOO_V2)
                assert app.cluster_pool.stats()[1].snapshot_version == 2
                proxy.heal()
                wait_until(lambda: app.cluster_pool.stats()[0].alive,
                           timeout=15.0, message="healed node rejoined")
                # The reconnect hello re-synced the missed snapshot: no
                # frame stamped v2 can ever reach a v1 replica.
                assert app.cluster_pool.stats()[0].snapshot_version == 2
                frames = _frames(4)
                expected = _reference_logits(ZOO_V2, "m", frames)
                with app.client(model="m") as client:
                    results, _ = client.run(frames)
                for result, reference in zip(results, expected):
                    np.testing.assert_allclose(result.arrays["logits"],
                                               reference, atol=1e-9)


# ----------------------------------------------------------------------
# Node-side transport robustness
# ----------------------------------------------------------------------
class TestNodeTransport:
    def test_node_tolerates_mid_frame_stall(self, one_node):
        """A transient stall *inside* a frame must not desync the stream.

        The node's envelope loop polls with a short quantum; only a
        timeout before any bytes of a frame may mean "no message".  A
        stall after the length prefix has to block until the rest arrives
        — a loop that abandons the partial read leaves the next recv
        starting mid-frame, a permanent protocol desync.
        """
        from repro.runtime.node import bootstrap_meta
        from repro.system.messages import (_LENGTH_FORMAT, Message,
                                           SHARD_KIND_PUBLISH,
                                           SHARD_KIND_READY, WIRE_FORMAT_RAW,
                                           recv_message, send_payload,
                                           serialize_message)

        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        with socket.create_connection(("127.0.0.1", one_node.port),
                                      timeout=60.0) as sock:
            send_payload(sock, serialize_message(
                Message(kind=SHARD_KIND_PUBLISH, frame_id=1,
                        meta=bootstrap_meta(repo)),
                wire_format=WIRE_FORMAT_RAW))
            ready = recv_message(sock)
            assert ready is not None and ready.kind == SHARD_KIND_READY

            arrays, meta = repo.device_fn("m")(_frames(1)[0])

            def frame_wire(frame_id: int) -> bytes:
                blob = serialize_message(
                    Message(kind="frame", frame_id=frame_id, arrays=arrays,
                            meta={"entry": "m", "frame": meta}),
                    wire_format=WIRE_FORMAT_RAW)
                return struct.pack(_LENGTH_FORMAT, len(blob)) + blob

            # First half (prefix + part of the payload), a stall well past
            # the envelope loop's poll quantum, then the rest.
            wire = frame_wire(2)
            sock.sendall(wire[:len(wire) // 2])
            time.sleep(1.2)
            sock.sendall(wire[len(wire) // 2:])
            result = recv_message(sock)
            assert result is not None and result.kind == "result"
            assert result.frame_id == 2
            # The stream is still framed correctly: a follow-up frame
            # round-trips on the same connection.
            sock.sendall(frame_wire(3))
            result = recv_message(sock)
            assert result is not None and result.kind == "result"
            assert result.frame_id == 3


# ----------------------------------------------------------------------
# chaosnet primitives (no cluster involved: a plain length-framed echo)
# ----------------------------------------------------------------------
class _EchoServer:
    """Echoes every length-prefixed frame back, one connection at a time."""

    def __init__(self):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(4)
        self.listener.settimeout(0.2)
        self.port = self.listener.getsockname()[1]
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _recv_exact(self, conn, size):
        data = b""
        while len(data) < size:
            chunk = conn.recv(size - len(data))
            if not chunk:
                return None
            data += chunk
        return data

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                while not self._stop.is_set():
                    prefix = self._recv_exact(conn, 4)
                    if prefix is None:
                        break
                    (length,) = struct.unpack(">I", prefix)
                    payload = self._recv_exact(conn, length)
                    if payload is None:
                        break
                    try:
                        conn.sendall(prefix + payload)
                    except OSError:
                        break

    def close(self):
        self._stop.set()
        self.listener.close()
        self.thread.join(timeout=5.0)


def _send_frame(sock, payload: bytes) -> None:
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def _recv_frame(sock, timeout=10.0):
    sock.settimeout(timeout)
    prefix = b""
    while len(prefix) < 4:
        chunk = sock.recv(4 - len(prefix))
        if not chunk:
            return None
        prefix += chunk
    (length,) = struct.unpack(">I", prefix)
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            raise ConnectionError("truncated frame")
        payload += chunk
    return payload


@pytest.fixture
def echo_proxy():
    echo = _EchoServer()
    clock = ManualClock()
    proxy = ChaosProxy("127.0.0.1", echo.port, clock=clock).start()
    sock = socket.create_connection((proxy.host, proxy.port), timeout=10.0)
    yield sock, proxy, clock
    sock.close()
    proxy.stop()
    echo.close()


class TestChaosnetPrimitives:
    def test_passthrough(self, echo_proxy):
        sock, proxy, _ = echo_proxy
        _send_frame(sock, b"hello")
        assert _recv_frame(sock) == b"hello"
        assert proxy.client_to_server.frames_forwarded == 1
        assert proxy.server_to_client.frames_forwarded == 1

    def test_drop(self, echo_proxy):
        sock, proxy, _ = echo_proxy
        proxy.client_to_server.drop_next()
        _send_frame(sock, b"lost")
        _send_frame(sock, b"kept")
        assert _recv_frame(sock) == b"kept"
        assert proxy.client_to_server.frames_dropped == 1

    def test_delay_is_clock_driven(self, echo_proxy):
        sock, proxy, clock = echo_proxy
        proxy.client_to_server.delay_next(60.0)
        _send_frame(sock, b"late")
        wait_until(lambda: proxy.client_to_server.held_frames() == 1,
                   message="frame held")
        with pytest.raises(socket.timeout):
            _recv_frame(sock, timeout=0.2)  # held: no wall wait releases it
        clock.advance(60.0)
        assert _recv_frame(sock) == b"late"

    def test_delay_preserves_order(self, echo_proxy):
        sock, proxy, clock = echo_proxy
        proxy.client_to_server.delay_next(60.0)
        _send_frame(sock, b"first")
        _send_frame(sock, b"second")
        wait_until(lambda: proxy.client_to_server.held_frames() == 1,
                   message="frame held")
        clock.advance(60.0)
        assert _recv_frame(sock) == b"first"
        assert _recv_frame(sock) == b"second"

    def test_duplicate(self, echo_proxy):
        sock, proxy, _ = echo_proxy
        proxy.client_to_server.duplicate_next()
        _send_frame(sock, b"twice")
        assert _recv_frame(sock) == b"twice"
        assert _recv_frame(sock) == b"twice"

    def test_reorder(self, echo_proxy):
        sock, proxy, _ = echo_proxy
        proxy.client_to_server.reorder_next()
        _send_frame(sock, b"first")
        _send_frame(sock, b"second")
        assert _recv_frame(sock) == b"second"
        assert _recv_frame(sock) == b"first"

    def test_truncate_severs_mid_frame(self, echo_proxy):
        sock, proxy, _ = echo_proxy
        proxy.server_to_client.truncate_next(6)  # 4B prefix + 2 payload bytes
        _send_frame(sock, b"chopped")
        with pytest.raises(ConnectionError):
            if _recv_frame(sock) is None:  # clean close also means severed
                raise ConnectionError("closed")

    def test_partition_and_heal(self, echo_proxy):
        sock, proxy, _ = echo_proxy
        proxy.partition()
        _send_frame(sock, b"void")
        with pytest.raises(socket.timeout):
            _recv_frame(sock, timeout=0.2)
        proxy.heal()
        _send_frame(sock, b"back")
        assert _recv_frame(sock) == b"back"
        assert proxy.client_to_server.frames_dropped == 1

    def test_kill_links(self, echo_proxy):
        sock, proxy, _ = echo_proxy
        _send_frame(sock, b"up")
        assert _recv_frame(sock) == b"up"
        proxy.kill_links()
        with pytest.raises((ConnectionError, socket.timeout, OSError)):
            if _recv_frame(sock, timeout=5.0) is None:
                raise ConnectionError("closed")
        assert proxy.live_links() == 0

    def test_flap_cycles_are_clock_driven(self, echo_proxy):
        sock, proxy, clock = echo_proxy
        driver = proxy.flap(2, up_s=10.0, down_s=5.0)
        # Cycle 1, up phase: traffic flows.
        _send_frame(sock, b"up-1")
        assert _recv_frame(sock) == b"up-1"
        clock.advance(10.0)
        wait_until(lambda: proxy.partitioned, message="first down phase")
        # Down phase: frames vanish silently, the link stays open.
        _send_frame(sock, b"void")
        with pytest.raises(socket.timeout):
            _recv_frame(sock, timeout=0.2)
        clock.advance(5.0)
        wait_until(lambda: proxy.flaps_completed == 1,
                   message="first cycle completed")
        assert not proxy.partitioned
        # Cycle 2, up phase again: the same connection recovers.
        _send_frame(sock, b"up-2")
        assert _recv_frame(sock) == b"up-2"
        clock.advance(15.0)
        wait_until(lambda: proxy.flaps_completed == 2,
                   message="second cycle completed")
        driver.join(timeout=10.0)
        assert not driver.is_alive()
        assert not proxy.partitioned
        assert proxy.client_to_server.frames_dropped == 1

    def test_flap_rejects_bad_schedules(self, echo_proxy):
        _, proxy, _ = echo_proxy
        with pytest.raises(ValueError):
            proxy.flap(0, up_s=1.0, down_s=1.0)
        with pytest.raises(ValueError):
            proxy.flap(1, up_s=-1.0, down_s=1.0)
