"""Tests for the ``repro.serving`` facade.

Covers the config dataclasses (validation, ``to_dict``/``from_dict``
round-trips), the config-driven builders, the deprecation shims of the old
``zoo_*`` free functions (warning + identical behavior), the
``ServingApp`` / ``Client`` lifecycle, the ``serve()`` one-liner, and the
public-API snapshot that CI guards.
"""

from __future__ import annotations

import dataclasses
import threading
from pathlib import Path

import numpy as np
import pytest

import repro.serving as serving_pkg
from repro.core import (Architecture, ArchitectureModel, ArchitectureZoo,
                        ZooEntry, zoo_callables, zoo_edge_fns,
                        zoo_serving_callables)
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.serving import (BatchingConfig, Client, ClientConfig,
                           ModelRepository, RuntimeConfig, ServerConfig,
                           ServingApp, ServingConfig, build_callables,
                           build_zoo_callables, serve)


def _arch(name: str, k: int = 4, width: int = 16) -> Architecture:
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=k),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.COMBINE, width),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name=name)


def _zoo() -> ArchitectureZoo:
    return ArchitectureZoo([
        ZooEntry("fast", _arch("fast", k=4, width=16), 0.88, 20.0, 0.2),
        ZooEntry("accurate", _arch("accurate", k=6, width=32), 0.95, 60.0, 0.6),
    ])


def _frames(count: int = 2):
    graphs = SyntheticModelNet40(num_points=16, samples_per_class=2,
                                 num_classes=3, seed=1).generate()
    return [Batch.from_graphs([graphs[i % len(graphs)]]) for i in range(count)]


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_defaults_are_valid(self):
        ServingConfig()  # must not raise
        ClientConfig()

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValueError, match="unknown runtime"):
            RuntimeConfig(runtime="jit")

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            RuntimeConfig(dtype="floaty64")

    def test_non_float_dtype_rejected(self):
        with pytest.raises(ValueError, match="floating"):
            RuntimeConfig(dtype="int32")

    def test_dtype_normalized_to_canonical_name(self):
        assert RuntimeConfig(dtype=np.float32).dtype == "float32"
        assert RuntimeConfig(dtype="float64").numpy_dtype == np.float64
        assert RuntimeConfig().numpy_dtype is None

    def test_eager_runtime_is_float64_only(self):
        with pytest.raises(ValueError, match="float64"):
            RuntimeConfig(runtime="eager", dtype="float32")
        RuntimeConfig(runtime="eager", dtype="float64")  # fine

    def test_unknown_plan_segments_rejected(self):
        with pytest.raises(ValueError, match="segment"):
            RuntimeConfig(segments=("device", "cloud"))
        with pytest.raises(ValueError, match="empty"):
            RuntimeConfig(segments=())

    def test_negative_batch_size_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchingConfig(max_batch_size=-1)
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchingConfig(max_batch_size=0)

    def test_non_integer_batch_size_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchingConfig(max_batch_size=2.5)
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchingConfig(max_batch_size=True)

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError, match="max_wait_ms"):
            BatchingConfig(max_wait_ms=-0.1)

    def test_batching_enabled_property(self):
        assert not BatchingConfig().enabled
        assert BatchingConfig(max_batch_size=2).enabled

    def test_server_knobs_validated(self):
        with pytest.raises(ValueError, match="max_workers"):
            ServerConfig(max_workers=0)
        with pytest.raises(ValueError, match="port"):
            ServerConfig(port=-1)
        with pytest.raises(ValueError, match="port"):
            ServerConfig(port=70000)
        with pytest.raises(ValueError, match="session_log_limit"):
            ServerConfig(session_log_limit=0)
        with pytest.raises(ValueError, match="host"):
            ServerConfig(host="")

    def test_unknown_wire_format_rejected(self):
        with pytest.raises(ValueError, match="wire format"):
            ClientConfig(wire_format="msgpack")

    def test_client_wire_dtype_validated(self):
        assert ClientConfig(wire_dtype=np.float32).wire_dtype == "float32"
        with pytest.raises(ValueError, match="wire_dtype"):
            ClientConfig(wire_dtype="int64")

    def test_client_timeouts_must_be_positive(self):
        with pytest.raises(ValueError, match="pipeline_timeout_s"):
            ClientConfig(pipeline_timeout_s=0.0)
        with pytest.raises(ValueError, match="connect_timeout_s"):
            ClientConfig(connect_timeout_s=-1.0)

    def test_non_finite_numbers_rejected(self):
        """NaN compares False against bounds and must not sneak through."""
        with pytest.raises(ValueError, match="finite"):
            ClientConfig(connect_timeout_s=float("nan"))
        with pytest.raises(ValueError, match="finite"):
            BatchingConfig(max_wait_ms=float("nan"))
        with pytest.raises(ValueError, match="finite"):
            ClientConfig(pipeline_timeout_s=float("inf"))

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BatchingConfig().max_batch_size = 4

    def test_serving_config_requires_config_types(self):
        with pytest.raises(ValueError, match="batching"):
            ServingConfig(batching=7)


# ----------------------------------------------------------------------
# to_dict / from_dict round-trips
# ----------------------------------------------------------------------
class TestConfigRoundTrips:
    @pytest.mark.parametrize("config", [
        RuntimeConfig(),
        RuntimeConfig(runtime="compiled", dtype="float32",
                      segments=("device", "edge")),
        BatchingConfig(max_batch_size=8, max_wait_ms=3.5),
        ServerConfig(host="0.0.0.0", port=9000, max_workers=4, backlog=8,
                     session_log_limit=64),
        ClientConfig(wire_format="raw", wire_dtype="float32",
                     connect_timeout_s=5.0, handshake_timeout_s=2.0,
                     pipeline_timeout_s=20.0),
        ServingConfig(runtime=RuntimeConfig(runtime="eager"),
                      batching=BatchingConfig(max_batch_size=4),
                      server=ServerConfig(max_workers=2)),
    ])
    def test_round_trip(self, config):
        payload = config.to_dict()
        rebuilt = type(config).from_dict(payload)
        assert rebuilt == config
        # The payload must be plain-JSON material (no numpy/config objects).
        import json
        json.dumps(payload)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="max_batchsize"):
            BatchingConfig.from_dict({"max_batchsize": 4})
        with pytest.raises(ValueError, match="unknown ServingConfig"):
            ServingConfig.from_dict({"batcher": {}})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            RuntimeConfig.from_dict([("runtime", "auto")])

    def test_from_dict_validates_values(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchingConfig.from_dict({"max_batch_size": -2})

    def test_serving_config_accepts_nested_dicts(self):
        config = ServingConfig.from_dict(
            {"batching": {"max_batch_size": 4},
             "runtime": {"runtime": "compiled"}})
        assert config.batching.max_batch_size == 4
        assert config.runtime.runtime == "compiled"
        assert config.server == ServerConfig()

    def test_serving_config_constructor_coerces_mappings(self):
        config = ServingConfig(batching={"max_batch_size": 2})
        assert config.batching == BatchingConfig(max_batch_size=2)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
class TestBuilders:
    def test_build_callables_matches_split_callables(self):
        from repro.core import split_callables
        model = ArchitectureModel(_arch("m"), in_dim=3, num_classes=3, seed=0)
        serving = build_callables(model)
        device_fn, edge_fn = split_callables(model)
        frame = _frames(1)[0]
        arrays_a, meta_a = serving.device_fn(frame)
        arrays_b, meta_b = device_fn(frame)
        np.testing.assert_allclose(arrays_a["x"], arrays_b["x"])
        np.testing.assert_allclose(
            serving.edge_fn(arrays_a, meta_a)[0]["logits"],
            edge_fn(arrays_b, meta_b)[0]["logits"])

    def test_build_zoo_callables_builds_every_entry(self):
        serving = build_zoo_callables(_zoo(), in_dim=3, num_classes=3)
        assert set(serving) == {"fast", "accurate"}
        for entry in serving.values():
            assert entry.device_fn and entry.edge_fn and entry.batch_fn

    def test_runtime_config_is_honored(self):
        model = ArchitectureModel(_arch("m"), in_dim=3, num_classes=3, seed=0)
        serving = build_callables(model, RuntimeConfig(runtime="compiled",
                                                       dtype="float32"))
        arrays, _ = serving.device_fn(_frames(1)[0])
        assert arrays["x"].dtype == np.float32


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------
class TestDeprecationShims:
    def test_zoo_serving_callables_warns_and_matches_facade(self):
        zoo = _zoo()
        with pytest.warns(DeprecationWarning, match="zoo_serving_callables"):
            old = zoo_serving_callables(zoo, in_dim=3, num_classes=3, seed=0)
        new = build_zoo_callables(zoo, in_dim=3, num_classes=3, seed=0)
        assert set(old) == set(new)
        frame = _frames(1)[0]
        for name in zoo.names():
            arrays_o, meta_o = old[name].device_fn(frame)
            arrays_n, meta_n = new[name].device_fn(frame)
            np.testing.assert_allclose(arrays_o["x"], arrays_n["x"])
            np.testing.assert_allclose(
                old[name].edge_fn(arrays_o, meta_o)[0]["logits"],
                new[name].edge_fn(arrays_n, meta_n)[0]["logits"])

    def test_zoo_callables_warns_and_matches_facade(self):
        zoo = _zoo()
        with pytest.warns(DeprecationWarning, match="zoo_callables"):
            pairs = zoo_callables(zoo, in_dim=3, num_classes=3, seed=0)
        new = build_zoo_callables(zoo, in_dim=3, num_classes=3, seed=0)
        assert set(pairs) == set(new)
        frame = _frames(1)[0]
        arrays_o, meta_o = pairs["fast"][0](frame)
        arrays_n, meta_n = new["fast"].device_fn(frame)
        np.testing.assert_allclose(arrays_o["x"], arrays_n["x"])
        np.testing.assert_allclose(pairs["fast"][1](arrays_o, meta_o)[0]["logits"],
                                   new["fast"].edge_fn(arrays_n, meta_n)[0]["logits"])

    def test_zoo_edge_fns_warns_and_matches_facade(self):
        zoo = _zoo()
        with pytest.warns(DeprecationWarning, match="zoo_edge_fns"):
            edge_fns = zoo_edge_fns(zoo, in_dim=3, num_classes=3, seed=0)
        new = build_zoo_callables(zoo, in_dim=3, num_classes=3, seed=0)
        assert set(edge_fns) == set(new)
        frame = _frames(1)[0]
        arrays, meta = new["fast"].device_fn(frame)
        np.testing.assert_allclose(edge_fns["fast"](arrays, meta)[0]["logits"],
                                   new["fast"].edge_fn(arrays, meta)[0]["logits"])

    def test_shims_honor_runtime_and_dtype(self):
        with pytest.warns(DeprecationWarning):
            old = zoo_serving_callables(_zoo(), 3, 3, 0, runtime="compiled",
                                        dtype=np.float32)
        arrays, _ = old["fast"].device_fn(_frames(1)[0])
        assert arrays["x"].dtype == np.float32


# ----------------------------------------------------------------------
# ServingApp / Client lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_serve_end_to_end_with_dispatch(self):
        zoo = _zoo()
        app = serve(zoo, in_dim=3, num_classes=3)
        frames = _frames(3)
        with app:
            assert app.running and not app.closed
            with app.client(name="tight",
                            conditions={"latency_budget_ms": 30.0}) as client:
                assert client.assigned_model == "fast"
                results, stats = client.run(frames)
            assert len(results) == len(frames)
            # Served logits match a local forward of the dispatched entry.
            model = ArchitectureModel(zoo.get("fast").architecture, in_dim=3,
                                      num_classes=3, seed=0)
            for frame, result in zip(frames, results):
                np.testing.assert_allclose(result.arrays["logits"],
                                           model(frame).data, atol=1e-8)
            assert app.stats().frames_processed == len(frames)
        assert app.closed and not app.running

    def test_serve_with_batching_config(self):
        config = ServingConfig(batching=BatchingConfig(max_batch_size=4,
                                                       max_wait_ms=10.0))
        with serve(_zoo(), config, in_dim=3, num_classes=3) as app:
            with app.client(model="fast") as client:
                results, _ = client.run(_frames(4))
            assert len(results) == 4
            assert app.server.max_batch_size == 4

    def test_app_cannot_restart_after_close(self):
        app = serve(_zoo(), in_dim=3, num_classes=3)
        app.stop()
        app.stop()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            app.start()
        with pytest.raises(RuntimeError, match="closed"):
            app.stats()

    def test_app_double_start_rejected(self):
        app = serve(_zoo(), in_dim=3, num_classes=3)
        try:
            with pytest.raises(RuntimeError, match="already running"):
                app.start()
        finally:
            app.stop()

    def test_app_requires_published_snapshot(self):
        repository = ModelRepository(in_dim=3, num_classes=3)
        with pytest.raises(RuntimeError, match="publish"):
            ServingApp(repository).start()

    def test_app_not_running_errors(self):
        repository = ModelRepository(in_dim=3, num_classes=3, zoo=_zoo())
        app = ServingApp(repository)
        with pytest.raises(RuntimeError, match="not running"):
            _ = app.port
        with pytest.raises(RuntimeError, match="not running"):
            app.stats()

    def test_client_lifecycle_errors(self):
        with serve(_zoo(), in_dim=3, num_classes=3) as app:
            client = app.client(model="fast")
            with pytest.raises(RuntimeError, match="not connected"):
                client.run(_frames(1))
            with client:
                assert client.connected
                results, _ = client.run(_frames(1))
                assert len(results) == 1
            assert client.closed
            client.stop()  # idempotent
            with pytest.raises(RuntimeError, match="closed"):
                client.start()

    def test_client_without_repository_needs_device_fn(self):
        with serve(_zoo(), in_dim=3, num_classes=3) as app:
            with Client(app.host, app.port, model="fast") as client:
                with pytest.raises(ValueError, match="device_fn"):
                    client.run(_frames(1))
                # Explicit device_fn still works without a repository.
                device_fn = app.repository.device_fn("fast")
                results, _ = client.run(_frames(1), device_fn)
                assert len(results) == 1

    def test_client_config_wire_knobs_flow_through(self):
        config = ClientConfig(wire_format="raw", wire_dtype="float32")
        with serve(_zoo(), in_dim=3, num_classes=3) as app:
            with app.client(model="fast", config=config) as client:
                results, _ = client.run(_frames(2))
            assert len(results) == 2

    def test_serve_accepts_plain_dict_config(self):
        with serve(_zoo(), {"batching": {"max_batch_size": 2}},
                   in_dim=3, num_classes=3) as app:
            assert app.config.batching.max_batch_size == 2

    def test_serve_reuses_repository(self):
        repository = ModelRepository(in_dim=3, num_classes=3, zoo=_zoo())
        with serve(repository.snapshot().zoo, in_dim=3, num_classes=3,
                   repository=repository) as app:
            assert app.repository is repository
            assert repository.version == 1  # same zoo: no re-publish

    def test_serve_rejects_config_conflicting_with_repository(self):
        """An explicit repository builds with ITS runtime/seed — a differing
        request must fail loudly instead of being silently ignored."""
        repository = ModelRepository(in_dim=3, num_classes=3, zoo=_zoo())
        with pytest.raises(ValueError, match="runtime"):
            serve(_zoo(), ServingConfig(runtime=RuntimeConfig(dtype="float32")),
                  in_dim=3, num_classes=3, repository=repository)
        with pytest.raises(ValueError, match="seed"):
            serve(_zoo(), in_dim=3, num_classes=3, seed=7,
                  repository=repository)
        # Matching (or default) runtime/seed still work.
        with serve(repository.snapshot().zoo, in_dim=3, num_classes=3,
                   repository=repository) as app:
            assert app.repository is repository

    def test_concurrent_clients_through_facade(self):
        frames = _frames(4)
        errors = []
        with serve(_zoo(), in_dim=3, num_classes=3) as app:
            def run_one(model):
                try:
                    with app.client(model=model) as client:
                        results, _ = client.run(frames)
                        assert len(results) == len(frames)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=run_one, args=(m,))
                       for m in ("fast", "accurate", "fast")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
        assert not errors


# ----------------------------------------------------------------------
# Public API surface
# ----------------------------------------------------------------------
class TestPublicApi:
    def test_all_names_resolve(self):
        for name in serving_pkg.__all__:
            assert getattr(serving_pkg, name, None) is not None, name

    def test_snapshot_file_matches(self):
        """tools/public_api.txt is the CI-guarded snapshot of the surface."""
        snapshot = Path(__file__).resolve().parent.parent / "tools" / "public_api.txt"
        recorded = [line.strip() for line in
                    snapshot.read_text().splitlines()
                    if line.strip() and not line.startswith("#")]
        assert recorded == sorted(serving_pkg.__all__)
