"""Tests for the hardware substrate: workloads, device models, link, LUTs, energy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import OpSpec, OpType
from repro.gnn.models import dgcnn_opspecs
from repro.hardware import (DataProfile, DeviceSpec, EnergyBreakdown,
                            JETSON_TX2, RASPBERRY_PI_4B, INTEL_I7, NVIDIA_1060,
                            LINK_10MBPS, LINK_40MBPS, WirelessLink,
                            build_latency_lut, communicate_latency_ms,
                            estimate_device_energy, get_device, get_link,
                            input_bytes, trace_workloads, transfer_bytes,
                            all_devices)


class TestDataProfile:
    def test_modelnet_profile(self):
        profile = DataProfile.modelnet40()
        assert profile.num_nodes == 1024 and profile.feature_dim == 3
        assert not profile.has_edges

    def test_mr_profile_has_edges(self):
        profile = DataProfile.mr()
        assert profile.has_edges and profile.initial_edges > 0
        assert profile.feature_dim == 300 and profile.num_classes == 2


class TestTraceWorkloads:
    def test_dimension_evolution_matches_semantics(self):
        profile = DataProfile.modelnet40(num_points=64, num_classes=10)
        ops = [OpSpec(OpType.SAMPLE, "knn", k=4),
               OpSpec(OpType.AGGREGATE, "max"),
               OpSpec(OpType.COMBINE, 32),
               OpSpec(OpType.GLOBAL_POOL, "max||mean")]
        workloads = trace_workloads(ops, profile)
        assert [w.in_dim for w in workloads[:-1]] == [3, 3, 6, 32]
        assert [w.out_dim for w in workloads[:-1]] == [3, 6, 32, 64]
        # Classifier entry is appended last with the pooled input width.
        assert workloads[-1].spec.op == OpType.CLASSIFIER
        assert workloads[-1].in_dim == 64 and workloads[-1].num_nodes == 1

    def test_sample_sets_edge_count(self):
        profile = DataProfile.modelnet40(num_points=100)
        workloads = trace_workloads([OpSpec(OpType.SAMPLE, "knn", k=5),
                                     OpSpec(OpType.AGGREGATE, "max")], profile)
        assert workloads[1].num_edges == 500

    def test_transfer_bytes_shrink_after_pooling(self):
        profile = DataProfile.modelnet40(num_points=128)
        ops = [OpSpec(OpType.SAMPLE, "knn", k=4),
               OpSpec(OpType.AGGREGATE, "max"),
               OpSpec(OpType.COMBINE, 64),
               OpSpec(OpType.GLOBAL_POOL, "mean"),
               OpSpec(OpType.COMBINE, 64)]
        workloads = trace_workloads(ops, profile)
        before_pool = workloads[2].output_bytes
        after_pool = workloads[3].output_bytes
        assert after_pool < before_pool / 10

    def test_mr_initial_edges_available_for_aggregate(self):
        profile = DataProfile.mr(num_words=20)
        workloads = trace_workloads([OpSpec(OpType.AGGREGATE, "mean")], profile)
        assert workloads[0].num_edges == profile.initial_edges

    def test_input_bytes(self):
        profile = DataProfile.modelnet40(num_points=1024)
        assert input_bytes(profile) == 1024 * 3 * 4
        mr = DataProfile.mr(num_words=17)
        assert input_bytes(mr) > 17 * 300 * 4  # features plus edge structure


class TestDeviceModel:
    def test_identity_is_free_and_communicate_is_overhead_only(self):
        profile = DataProfile.modelnet40(num_points=64)
        identity = trace_workloads([OpSpec(OpType.IDENTITY, "skip")], profile)[0]
        assert JETSON_TX2.op_latency_ms(identity) == 0.0
        comm = trace_workloads([OpSpec(OpType.COMMUNICATE, "uplink")], profile)[0]
        assert JETSON_TX2.op_latency_ms(comm) == JETSON_TX2.op_overhead_ms

    def test_latency_grows_with_workload(self):
        small = DataProfile.modelnet40(num_points=128)
        large = DataProfile.modelnet40(num_points=1024)
        op = [OpSpec(OpType.SAMPLE, "knn", k=8)]
        lat_small = JETSON_TX2.op_latency_ms(trace_workloads(op, small)[0])
        lat_large = JETSON_TX2.op_latency_ms(trace_workloads(op, large)[0])
        assert lat_large > lat_small * 4

    def test_cache_aware_aggregate_rate(self):
        """Aggregate on i7 is much slower once the table falls out of cache."""
        small = DataProfile.mr(num_words=17, feature_dim=128)
        large = DataProfile.modelnet40(num_points=1024)
        # Widen the features to 128 before aggregating: the 1024-node table no
        # longer fits the i7's modelled cache while the 17-node table does.
        ops = [OpSpec(OpType.SAMPLE, "knn", k=20), OpSpec(OpType.COMBINE, 128),
               OpSpec(OpType.AGGREGATE, "max")]
        small_ops = [OpSpec(OpType.COMBINE, 128), OpSpec(OpType.AGGREGATE, "max")]
        agg_small = INTEL_I7.op_latency_ms(trace_workloads(small_ops, small)[1])
        agg_large = INTEL_I7.op_latency_ms(trace_workloads(ops, large)[2])
        assert agg_large > 50 * agg_small

    def test_sequence_latency_is_sum(self):
        profile = DataProfile.modelnet40(num_points=64)
        ops = dgcnn_opspecs(k=8)
        workloads = trace_workloads(ops, profile)
        total = JETSON_TX2.sequence_latency_ms(workloads)
        assert total == pytest.approx(sum(JETSON_TX2.op_latency_ms(w)
                                          for w in workloads))

    def test_energy_helpers(self):
        assert JETSON_TX2.compute_energy_j(1000.0) == pytest.approx(
            JETSON_TX2.busy_power_w)
        assert JETSON_TX2.idle_energy_j(0.0) == 0.0

    def test_registry_lookup_and_aliases(self):
        assert get_device("tx2") is JETSON_TX2
        assert get_device("PI") is RASPBERRY_PI_4B
        with pytest.raises(KeyError):
            get_device("tpu")

    def test_describe_contains_all_rates(self):
        described = NVIDIA_1060.describe()
        assert described["dense_rate"] > described["gather_rate_cold"]


class TestCalibrationAnchors:
    """The device models should land near the paper's measured anchors."""

    @pytest.mark.parametrize("device,target_ms,tolerance", [
        (JETSON_TX2, 242.0, 0.35),
        (RASPBERRY_PI_4B, 1122.0, 0.35),
        (INTEL_I7, 330.0, 0.35),
        (NVIDIA_1060, 105.0, 0.35),
    ])
    def test_dgcnn_device_only_latency(self, device, target_ms, tolerance):
        profile = DataProfile.modelnet40()
        workloads = trace_workloads(dgcnn_opspecs(), profile, classifier_hidden=256)
        latency = device.sequence_latency_ms(workloads, classifier_hidden=256)
        assert abs(latency - target_ms) / target_ms < tolerance

    def test_knn_dominates_on_gpus(self):
        profile = DataProfile.modelnet40()
        workloads = trace_workloads(dgcnn_opspecs(), profile, classifier_hidden=256)
        for device in (JETSON_TX2, NVIDIA_1060):
            knn = sum(device.op_latency_ms(w) for w in workloads
                      if w.spec.op == OpType.SAMPLE)
            total = device.sequence_latency_ms(workloads, 256)
            assert knn / total > 0.4

    def test_aggregate_dominates_on_i7_modelnet(self):
        profile = DataProfile.modelnet40()
        workloads = trace_workloads(dgcnn_opspecs(), profile, classifier_hidden=256)
        agg = sum(INTEL_I7.op_latency_ms(w) for w in workloads
                  if w.spec.op == OpType.AGGREGATE)
        total = INTEL_I7.sequence_latency_ms(workloads, 256)
        assert agg / total > 0.4

    def test_combine_dominates_on_i7_mr(self):
        profile = DataProfile.mr()
        workloads = trace_workloads(dgcnn_opspecs(), profile, classifier_hidden=256)
        by_type = {}
        for w in workloads:
            by_type.setdefault(w.spec.op, 0.0)
            by_type[w.spec.op] += INTEL_I7.op_latency_ms(w, 256)
        combine_like = by_type.get(OpType.COMBINE, 0) + by_type.get(OpType.CLASSIFIER, 0)
        assert combine_like > by_type.get(OpType.AGGREGATE, 0)
        assert combine_like > by_type.get(OpType.SAMPLE, 0)

    def test_pi_is_slowest_everywhere(self):
        profile = DataProfile.modelnet40()
        workloads = trace_workloads(dgcnn_opspecs(), profile, classifier_hidden=256)
        pi_latency = RASPBERRY_PI_4B.sequence_latency_ms(workloads, 256)
        for device in (JETSON_TX2, INTEL_I7, NVIDIA_1060):
            assert pi_latency > device.sequence_latency_ms(workloads, 256)


class TestWirelessLink:
    def test_transfer_time_scales_with_bandwidth(self):
        payload = 100_000
        assert (LINK_10MBPS.transfer_time_ms(payload)
                > LINK_40MBPS.transfer_time_ms(payload) * 2)

    def test_zero_payload_is_free(self):
        assert LINK_40MBPS.transfer_time_ms(0) == 0.0

    def test_compression_reduces_time(self):
        lossless = WirelessLink(bandwidth_mbps=40, compression_ratio=1.0, rtt_ms=0.0)
        compressed = WirelessLink(bandwidth_mbps=40, compression_ratio=0.5, rtt_ms=0.0)
        assert compressed.transfer_time_ms(10_000) == pytest.approx(
            lossless.transfer_time_ms(10_000) / 2)

    def test_transmit_power_model_affine(self):
        link = WirelessLink(bandwidth_mbps=40, tx_power_base_w=1.0,
                            tx_power_per_mbps_w=0.01)
        assert link.transmit_power_w() == pytest.approx(1.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            WirelessLink(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            WirelessLink(bandwidth_mbps=10, compression_ratio=0.0)

    def test_get_link_by_name_and_number(self):
        assert get_link("10mbps") is LINK_10MBPS
        assert get_link(25).bandwidth_mbps == 25
        with pytest.raises(KeyError):
            get_link("5g")


class TestEnergy:
    def test_breakdown_components_sum(self):
        breakdown = estimate_device_energy(JETSON_TX2, LINK_40MBPS,
                                           device_busy_ms=100.0,
                                           device_idle_ms=50.0,
                                           uploaded_bytes=50_000)
        assert breakdown.total_j == pytest.approx(
            breakdown.idle_j + breakdown.run_j + breakdown.comm_j)
        assert breakdown.run_j > breakdown.idle_j

    def test_no_upload_means_no_comm_energy(self):
        breakdown = estimate_device_energy(JETSON_TX2, LINK_40MBPS, 10.0, 0.0, 0)
        assert breakdown.comm_j == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            estimate_device_energy(JETSON_TX2, LINK_40MBPS, -1.0, 0.0, 0)


class TestLatencyLUT:
    def test_lut_has_entries_for_all_ops(self):
        profile = DataProfile.modelnet40(num_points=64)
        lut = build_latency_lut(JETSON_TX2, profile)
        assert len(lut.entries) > 20
        assert lut.lookup(OpSpec(OpType.COMBINE, 64), 64) > 0

    def test_lookup_falls_back_for_unseen_width(self):
        profile = DataProfile.modelnet40(num_points=64)
        lut = build_latency_lut(JETSON_TX2, profile)
        value = lut.lookup(OpSpec(OpType.COMBINE, 64), 48)
        assert value > 0

    def test_faster_device_has_smaller_entries(self):
        profile = DataProfile.modelnet40(num_points=256)
        fast = build_latency_lut(NVIDIA_1060, profile)
        slow = build_latency_lut(RASPBERRY_PI_4B, profile)
        spec = OpSpec(OpType.COMBINE, 128)
        assert fast.lookup(spec, 128) < slow.lookup(spec, 128)

    def test_communicate_latency_uses_link(self):
        assert communicate_latency_ms(LINK_10MBPS, 100_000) > \
            communicate_latency_ms(LINK_40MBPS, 100_000)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=10 ** 6))
def test_transfer_time_monotone_in_payload(payload):
    """Property: transfer time never decreases as the payload grows."""
    assert LINK_40MBPS.transfer_time_ms(payload) <= \
        LINK_40MBPS.transfer_time_ms(payload + 1024)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(["add", "mean", "max"]),
       st.integers(min_value=16, max_value=512))
def test_op_latency_positive_property(reducer, num_points):
    """Property: every modelled operation latency is strictly positive."""
    profile = DataProfile.modelnet40(num_points=num_points)
    ops = [OpSpec(OpType.SAMPLE, "knn", k=8), OpSpec(OpType.AGGREGATE, reducer)]
    for device in all_devices():
        for workload in trace_workloads(ops, profile):
            assert device.op_latency_ms(workload) > 0
