"""QoS admission control and pluggable transport frontends.

Covers the three layers the transport/scheduling split created:

* :mod:`repro.system.scheduler` — deterministic unit tests of the
  admission decisions (bounded queues, priority classes, per-client
  fairness, deadline handling) using injected clocks.
* :mod:`repro.system.transport` + :mod:`repro.system.engine` — end-to-end
  QoS semantics over real sockets: a shed frame gets a clean ``rejected``
  reply (not a timeout), expired-deadline frames are never executed,
  fairness protects a trickle client from a firehose, and the execution
  tier's :class:`FrameExpiredError` / :class:`BackpressureError` surface
  as typed rejections.
* :mod:`repro.serving` — `QosConfig` / `ServerConfig(frontend=...)` /
  `ClientConfig` validation and round-trips, plus the hard invariant of
  the refactor: the threaded and asyncio frontends produce numerically
  identical results (≤ 1e-9) across the aggregator × pool zoo matrix,
  and the PR 4/5 guarantees (hot-reload snapshot pinning, batch purity,
  shard crash semantics) hold identically under the async frontend.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from conftest import wait_until
from repro.core import (Architecture, ArchitectureModel, ArchitectureZoo,
                        ZooEntry)
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.serving import (BatchingConfig, ClientConfig, ModelRepository,
                           QosConfig, RequestRejectedError, ServerConfig,
                           ServingConfig, ShardingConfig, serve,
                           sharding_supported)
from repro.system import DeviceClient, EdgeServer
from repro.system.messages import Message, send_message
from repro.system.scheduler import (REJECT_REASON_CAPACITY,
                                    REJECT_REASON_DEADLINE,
                                    REJECT_REASON_FAIRNESS, Admission,
                                    BackpressureError, FrameExpiredError,
                                    QosPolicy, Rejection, Scheduler)
from repro.system.transport import FRONTEND_ASYNC, FRONTEND_THREADED, FRONTENDS


def _arch(name: str, k: int = 4, width: int = 16, aggregate: str = "max",
          pool: str = "max||mean") -> Architecture:
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=k),
        OpSpec(OpType.AGGREGATE, aggregate),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.COMBINE, width),
        OpSpec(OpType.GLOBAL_POOL, pool),
    ), name=name)


ZOO_V1 = ArchitectureZoo([ZooEntry("m", _arch("m", k=4, width=16),
                                   0.9, 40.0, 0.4)])
ZOO_V2 = ArchitectureZoo([ZooEntry("m", _arch("m", k=8, width=32),
                                   0.93, 55.0, 0.5)])

#: One entry per aggregator x pooling combination the design space uses —
#: the matrix over which the two frontends must agree ≤ 1e-9.
MATRIX_ZOO = ArchitectureZoo([
    ZooEntry(f"{aggregate}-{pool}".replace("||", ""),
             _arch(f"{aggregate}-{pool}".replace("||", ""), k=4, width=16,
                   aggregate=aggregate, pool=pool),
             0.9, 40.0, 0.4)
    for aggregate in ("max", "mean", "add")
    for pool in ("max", "mean", "max||mean")
])


def _frames(count: int = 3):
    graphs = SyntheticModelNet40(num_points=24, samples_per_class=2,
                                 num_classes=3, seed=1).generate()
    return [Batch.from_graphs([graphs[i % len(graphs)]]) for i in range(count)]


def _reference_logits(zoo: ArchitectureZoo, name: str, frames) -> list:
    model = ArchitectureModel(zoo.get(name).architecture, in_dim=3,
                              num_classes=3, seed=0)
    return [model(frame).data for frame in frames]


def _matches(logits, *references, atol: float = 1e-8) -> bool:
    return any(np.allclose(logits, ref, atol=atol) for ref in references)


def _device_fn(frame):
    return {"x": np.asarray(frame, dtype=np.float64)}, {}


def _echo_fn(arrays, meta):
    return {"y": arrays["x"] * 2.0}, meta


# ----------------------------------------------------------------------
# Config layer: QosConfig / ServerConfig.frontend / ClientConfig QoS knobs
# ----------------------------------------------------------------------
class TestQosConfig:
    def test_defaults_valid_and_disabled(self):
        config = QosConfig()
        assert config.max_queue_depth is None
        assert config.default_deadline_ms is None
        assert not config.enabled
        assert not config.policy().bounded

    def test_enabled_when_any_knob_departs(self):
        assert QosConfig(max_queue_depth=8).enabled
        assert QosConfig(default_deadline_ms=100.0).enabled
        assert QosConfig(priority_map={"bulk": 1}).enabled
        assert QosConfig(default_priority=1).enabled
        assert not QosConfig(retry_after_ms=10.0).enabled

    def test_validation(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            QosConfig(max_queue_depth=0)
        with pytest.raises(ValueError, match="default_deadline_ms"):
            QosConfig(default_deadline_ms=0.0)
        with pytest.raises(ValueError, match="retry_after_ms"):
            QosConfig(retry_after_ms=-1.0)
        with pytest.raises(ValueError, match="priority_map"):
            QosConfig(priority_map={"bulk": -1})
        with pytest.raises(ValueError, match="priority_map"):
            QosConfig(priority_map={"bulk": True})
        with pytest.raises(ValueError, match="default_priority"):
            QosConfig(default_priority=-1)
        with pytest.raises(ValueError, match="fairness_window_s"):
            QosConfig(fairness_window_s=0.0)

    def test_policy_mirrors_config(self):
        config = QosConfig(max_queue_depth=16, default_deadline_ms=250.0,
                           retry_after_ms=20.0, priority_map={"bulk": 2},
                           default_priority=1, fairness=False)
        policy = config.policy()
        assert isinstance(policy, QosPolicy)
        assert policy.max_queue_depth == 16
        assert policy.default_deadline_ms == 250.0
        assert policy.retry_after_ms == 20.0
        assert dict(policy.priority_map) == {"bulk": 2}
        assert policy.default_priority == 1
        assert policy.fairness is False

    def test_round_trip(self):
        config = ServingConfig(
            qos=QosConfig(max_queue_depth=8, default_deadline_ms=100.0,
                          priority_map={"interactive": 0, "bulk": 2}),
            server=ServerConfig(frontend=FRONTEND_ASYNC))
        rebuilt = ServingConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.qos.priority_map == {"interactive": 0, "bulk": 2}
        assert rebuilt.server.frontend == FRONTEND_ASYNC

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="QosConfig"):
            QosConfig.from_dict({"max_queue_depth": 4, "shed": True})

    def test_batching_max_queue_depth_validated(self):
        assert BatchingConfig().max_queue_depth is None
        assert BatchingConfig(max_queue_depth=4).max_queue_depth == 4
        with pytest.raises(ValueError, match="max_queue_depth"):
            BatchingConfig(max_queue_depth=0)

    def test_server_frontend_validated(self):
        assert ServerConfig().frontend == FRONTEND_THREADED
        assert ServerConfig(frontend=FRONTEND_ASYNC).frontend == FRONTEND_ASYNC
        with pytest.raises(ValueError, match="frontend"):
            ServerConfig(frontend="quic")

    def test_client_qos_knobs_validated(self):
        config = ClientConfig(deadline_ms=50.0, priority="interactive",
                              on_rejected="drop")
        rebuilt = ClientConfig.from_dict(config.to_dict())
        assert rebuilt == config
        with pytest.raises(ValueError, match="deadline_ms"):
            ClientConfig(deadline_ms=0.0)
        with pytest.raises(ValueError, match="priority"):
            ClientConfig(priority=-2)
        with pytest.raises(ValueError, match="on_rejected"):
            ClientConfig(on_rejected="retry")


# ----------------------------------------------------------------------
# Scheduler unit tests (deterministic: injected clocks, no sockets)
# ----------------------------------------------------------------------
class TestScheduler:
    def test_default_policy_is_unbounded(self):
        scheduler = Scheduler()
        for i in range(1000):
            decision = scheduler.admit("c", {}, now=float(i))
            assert isinstance(decision, Admission)
        snapshot = scheduler.snapshot()
        assert snapshot.queued == 1000 and snapshot.frames_shed == 0

    def test_capacity_bound_sheds_and_release_refills(self):
        scheduler = Scheduler(QosPolicy(max_queue_depth=2, fairness=False,
                                        retry_after_ms=25.0))
        assert isinstance(scheduler.admit("c", {}, now=0.0), Admission)
        assert isinstance(scheduler.admit("c", {}, now=0.0), Admission)
        decision = scheduler.admit("c", {}, now=0.0)
        assert isinstance(decision, Rejection)
        assert decision.reason == REJECT_REASON_CAPACITY
        assert decision.retry_after_ms == 25.0
        scheduler.release("c")
        assert isinstance(scheduler.admit("c", {}, now=0.0), Admission)
        snapshot = scheduler.snapshot()
        assert snapshot.frames_shed == 1
        assert snapshot.shed_by_reason == {REJECT_REASON_CAPACITY: 1}
        assert snapshot.queued == 2

    def test_fairness_caps_one_client_at_its_share(self):
        scheduler = Scheduler(QosPolicy(max_queue_depth=4, fairness=True,
                                        fairness_window_s=10.0))
        # Trickle client announces itself first: both clients are active,
        # so each share is 4 // 2 = 2 slots.
        assert isinstance(scheduler.admit("trickle", {}, now=0.0), Admission)
        assert isinstance(scheduler.admit("firehose", {}, now=0.1), Admission)
        assert isinstance(scheduler.admit("firehose", {}, now=0.1), Admission)
        # The firehose owns its full share: fairness sheds its next frame...
        decision = scheduler.admit("firehose", {}, now=0.1)
        assert isinstance(decision, Rejection)
        assert decision.reason == REJECT_REASON_FAIRNESS
        # ...while the trickle client still finds room.
        assert isinstance(scheduler.admit("trickle", {}, now=0.2), Admission)
        # Releasing a firehose frame frees its share again.
        scheduler.release("firehose")
        assert isinstance(scheduler.admit("firehose", {}, now=0.3), Admission)

    def test_fairness_window_expires_idle_clients(self):
        scheduler = Scheduler(QosPolicy(max_queue_depth=4, fairness=True,
                                        fairness_window_s=1.0))
        assert isinstance(scheduler.admit("a", {}, now=0.0), Admission)
        scheduler.release("a")
        # Two seconds later "a" is stale: "b" is the only active client and
        # sees the whole queue bound as its share.
        for _ in range(4):
            assert isinstance(scheduler.admit("b", {}, now=2.0), Admission)

    def test_priority_classes_shed_low_first(self):
        scheduler = Scheduler(QosPolicy(max_queue_depth=4, fairness=False,
                                        priority_map={"bulk": 2}))
        # Two frames queued: level 2 sees an effective bound of 4 >> 2 = 1,
        # so bulk traffic is shed while the top class still has room.
        assert isinstance(scheduler.admit("c", {}, now=0.0), Admission)
        assert isinstance(scheduler.admit("c", {}, now=0.0), Admission)
        decision = scheduler.admit("c", {"priority": "bulk"}, now=0.0)
        assert isinstance(decision, Rejection)
        assert decision.reason == REJECT_REASON_CAPACITY
        assert isinstance(scheduler.admit("c", {}, now=0.0), Admission)

    def test_resolve_priority(self):
        scheduler = Scheduler(QosPolicy(priority_map={"bulk": 2},
                                        default_priority=1))
        assert scheduler.resolve_priority({}) == 1
        assert scheduler.resolve_priority({"priority": "bulk"}) == 2
        assert scheduler.resolve_priority({"priority": "unknown"}) == 1
        assert scheduler.resolve_priority({"priority": 3}) == 3
        assert scheduler.resolve_priority({"priority": 2.0}) == 2
        assert scheduler.resolve_priority({"priority": -5}) == 0
        assert scheduler.resolve_priority({"priority": True}) == 1
        assert scheduler.resolve_priority({"priority": [1]}) == 1

    def test_nonpositive_deadline_rejected_on_arrival(self):
        scheduler = Scheduler()
        decision = scheduler.admit("c", {"deadline_ms": 0.0}, now=0.0)
        assert isinstance(decision, Rejection)
        assert decision.reason == REJECT_REASON_DEADLINE
        decision = scheduler.admit("c", {"deadline_ms": -5.0}, now=0.0)
        assert isinstance(decision, Rejection)
        # A hopeless frame never occupies a queue slot.
        assert scheduler.snapshot().queued == 0
        assert scheduler.snapshot().frames_shed == 2

    def test_deadline_stamps_absolute_expiry(self):
        scheduler = Scheduler()
        decision = scheduler.admit("c", {"deadline_ms": 5.0}, now=100.0)
        assert isinstance(decision, Admission)
        assert decision.expires_at == pytest.approx(100.005)
        assert not scheduler.expired(decision.expires_at, now=100.004)
        assert scheduler.expired(decision.expires_at, now=100.006)
        assert not scheduler.expired(None, now=1e9)

    def test_default_deadline_applies_to_untagged_frames(self):
        scheduler = Scheduler(QosPolicy(default_deadline_ms=10.0))
        decision = scheduler.admit("c", {}, now=50.0)
        assert isinstance(decision, Admission)
        assert decision.expires_at == pytest.approx(50.010)
        # An unparseable deadline tag falls back to the policy default.
        decision = scheduler.admit("c", {"deadline_ms": "soon"}, now=50.0)
        assert isinstance(decision, Admission)
        assert decision.expires_at == pytest.approx(50.010)

    def test_queue_delay_percentiles(self):
        scheduler = Scheduler()
        for delay in (0.01, 0.02, 0.03, 0.04, 0.05,
                      0.06, 0.07, 0.08, 0.09, 0.50):
            scheduler.admit("c", {}, now=0.0)
            scheduler.release("c", queue_delay_s=delay)
        snapshot = scheduler.snapshot()
        assert snapshot.queue_delay_p50_s == pytest.approx(0.06)
        assert snapshot.queue_delay_p99_s == pytest.approx(0.50)

    def test_record_shed_books_dispatch_time_sheds(self):
        scheduler = Scheduler()
        scheduler.record_shed(REJECT_REASON_DEADLINE)
        scheduler.record_shed(REJECT_REASON_DEADLINE)
        scheduler.record_shed(REJECT_REASON_CAPACITY)
        snapshot = scheduler.snapshot()
        assert snapshot.frames_shed == 3
        assert snapshot.shed_by_reason == {REJECT_REASON_DEADLINE: 2,
                                           REJECT_REASON_CAPACITY: 1}


# ----------------------------------------------------------------------
# End-to-end QoS semantics over real sockets
# ----------------------------------------------------------------------
class TestQosEndToEnd:
    def test_shed_frame_gets_fast_rejected_reply_not_timeout(self):
        """A shed frame raises a typed error within a round-trip."""
        def slow_fn(arrays, meta):
            time.sleep(0.1)
            return {"y": arrays["x"]}, meta

        server = EdgeServer(slow_fn, frontend=FRONTEND_ASYNC, max_workers=1,
                            qos=QosPolicy(max_queue_depth=1, fairness=False,
                                          retry_after_ms=15.0)).start()
        try:
            client = DeviceClient(server.host, server.port)
            try:
                started = time.monotonic()
                with pytest.raises(RequestRejectedError) as excinfo:
                    client.run_pipeline([np.ones((4,))] * 12, _device_fn,
                                        timeout_s=60.0)
                # An explicit answer, not a burned pipeline timeout.
                assert time.monotonic() - started < 10.0
                assert excinfo.value.reason == REJECT_REASON_CAPACITY
                assert excinfo.value.retry_after_ms == 15.0
                assert 0 <= excinfo.value.frame_id < 12
            finally:
                client.close()
            stats = server.stats()
            assert stats.frames_shed > 0
            assert stats.shed_by_reason.get(REJECT_REASON_CAPACITY, 0) > 0
            assert stats.frontend == FRONTEND_ASYNC
        finally:
            server.stop()

    def test_drop_mode_counts_rejections(self):
        def slow_fn(arrays, meta):
            time.sleep(0.05)
            return {"y": arrays["x"]}, meta

        server = EdgeServer(slow_fn, frontend=FRONTEND_ASYNC, max_workers=1,
                            qos=QosPolicy(max_queue_depth=1,
                                          fairness=False)).start()
        try:
            client = DeviceClient(server.host, server.port,
                                  on_rejected="drop")
            try:
                results, stats = client.run_pipeline(
                    [np.ones((4,))] * 12, _device_fn, timeout_s=60.0)
            finally:
                client.close()
            assert stats.frames_rejected > 0
            assert len(results) + stats.frames_rejected == 12
            assert server.stats().frames_shed == stats.frames_rejected
        finally:
            server.stop()

    def test_expired_deadline_frames_are_never_executed(self):
        """A frame whose deadline lapsed in the queue must not burn an
        engine call: the batch dispatch sheds it before execution."""
        executed = []

        def counting_batch(items):
            executed.extend(items)
            return [({"y": arrays["x"]}, meta) for arrays, meta in items]

        server = EdgeServer(_echo_fn,
                            batch_fns={"default": counting_batch},
                            max_batch_size=8, max_wait_ms=10.0).start()
        try:
            # 0.0005 ms expires long before the 10 ms coalescing window —
            # deadlines are honored even with no QosPolicy installed.
            client = DeviceClient(server.host, server.port,
                                  deadline_ms=0.0005, on_rejected="drop")
            try:
                results, stats = client.run_pipeline(
                    [np.ones((4,))] * 4, _device_fn, timeout_s=30.0)
            finally:
                client.close()
            assert results == []
            assert stats.frames_rejected == 4
            assert executed == []
            stats = server.stats()
            assert stats.shed_by_reason == {REJECT_REASON_DEADLINE: 4}
            assert stats.frames_processed == 0
        finally:
            server.stop()

    def test_fairness_protects_trickle_from_firehose(self):
        """One saturating client cannot starve a trickle client."""
        def slow_batch(items):
            time.sleep(0.01)
            return [({"y": arrays["x"] * 2.0}, meta)
                    for arrays, meta in items]

        server = EdgeServer(_echo_fn, batch_fns={"default": slow_batch},
                            max_batch_size=4, max_wait_ms=1.0,
                            qos=QosPolicy(max_queue_depth=8, fairness=True,
                                          fairness_window_s=5.0)).start()
        try:
            trickle = DeviceClient(server.host, server.port,
                                   client_name="trickle")
            firehose = DeviceClient(server.host, server.port,
                                    client_name="firehose",
                                    on_rejected="drop")
            firehose_stats = []

            def blast():
                results, stats = firehose.run_pipeline(
                    [np.ones((64,))] * 100, _device_fn, timeout_s=60.0)
                firehose_stats.append(stats)

            try:
                # The trickle client registers as active before the blast,
                # pinning the firehose's share at half the queue bound.
                trickle.run_pipeline([np.ones((4,))], _device_fn,
                                     timeout_s=30.0)
                thread = threading.Thread(target=blast)
                thread.start()
                served = 0
                for _ in range(5):
                    results, _ = trickle.run_pipeline(
                        [np.full((4,), 3.0)], _device_fn, timeout_s=30.0)
                    np.testing.assert_allclose(results[0].arrays["y"],
                                               np.full((4,), 6.0))
                    served += 1
                    time.sleep(0.02)
                thread.join(timeout=60.0)
                assert not thread.is_alive()
            finally:
                trickle.close()
                firehose.close()
            # Every trickle frame was served while the firehose was shed.
            assert served == 5
            assert firehose_stats and firehose_stats[0].frames_rejected > 0
            shed = server.stats().shed_by_reason
            assert shed.get(REJECT_REASON_FAIRNESS, 0) > 0
        finally:
            server.stop()

    def test_execution_tier_backpressure_surfaces_as_rejection(self):
        """BackpressureError from the compute tier (a full shard ring)
        becomes a typed capacity rejection, not a generic error."""
        def pushy_fn(arrays, meta):
            raise BackpressureError("ring full")

        server = EdgeServer(pushy_fn).start()
        try:
            client = DeviceClient(server.host, server.port)
            try:
                with pytest.raises(RequestRejectedError) as excinfo:
                    client.run_pipeline([np.ones((4,))], _device_fn,
                                        timeout_s=30.0)
                assert excinfo.value.reason == REJECT_REASON_CAPACITY
            finally:
                client.close()
            assert server.stats().shed_by_reason == {REJECT_REASON_CAPACITY: 1}
        finally:
            server.stop()

    def test_execution_tier_expiry_surfaces_as_rejection(self):
        def expired_fn(arrays, meta):
            raise FrameExpiredError("too late")

        server = EdgeServer(expired_fn).start()
        try:
            client = DeviceClient(server.host, server.port,
                                  on_rejected="drop")
            try:
                results, stats = client.run_pipeline(
                    [np.ones((4,))] * 2, _device_fn, timeout_s=30.0)
            finally:
                client.close()
            assert results == [] and stats.frames_rejected == 2
            assert server.stats().shed_by_reason == {REJECT_REASON_DEADLINE: 2}
        finally:
            server.stop()

    def test_device_client_validates_qos_knobs(self):
        with pytest.raises(ValueError, match="on_rejected"):
            DeviceClient("127.0.0.1", 1, on_rejected="retry")
        with pytest.raises(ValueError, match="deadline_ms"):
            DeviceClient("127.0.0.1", 1, deadline_ms=0.0)


# ----------------------------------------------------------------------
# Facade wiring: BatchingConfig.max_queue_depth alias, stats surfacing
# ----------------------------------------------------------------------
class TestFacadeWiring:
    def test_batching_max_queue_depth_feeds_the_scheduler(self):
        config = ServingConfig(
            batching=BatchingConfig(max_batch_size=2, max_queue_depth=3))
        with serve(ZOO_V1, config, in_dim=3, num_classes=3) as app:
            assert app.server.scheduler.policy.max_queue_depth == 3

    def test_explicit_qos_config_wins_over_alias(self):
        config = ServingConfig(
            batching=BatchingConfig(max_batch_size=2, max_queue_depth=3),
            qos=QosConfig(max_queue_depth=8))
        with serve(ZOO_V1, config, in_dim=3, num_classes=3) as app:
            assert app.server.scheduler.policy.max_queue_depth == 8

    def test_client_config_qos_knobs_reach_device_client(self):
        config = ServingConfig(qos=QosConfig(priority_map={"bulk": 1}))
        with serve(ZOO_V1, config, in_dim=3, num_classes=3) as app:
            with app.client(model="m",
                            config=ClientConfig(deadline_ms=5000.0,
                                                priority="bulk",
                                                on_rejected="drop")) as client:
                results, stats = client.run(_frames(1))
                assert len(results) == 1
                assert stats.frames_rejected == 0


# ----------------------------------------------------------------------
# Frontend equivalence: threaded and async serve identical numbers
# ----------------------------------------------------------------------
class TestFrontendEquivalence:
    @pytest.mark.parametrize("frontend", FRONTENDS)
    def test_matrix_zoo_equivalent_across_frontends(self, frontend):
        """Every aggregator x pool entry: served logits == eager ≤ 1e-9
        under both frontends."""
        frames = _frames(2)
        config = ServingConfig(server=ServerConfig(frontend=frontend))
        with serve(MATRIX_ZOO, config, in_dim=3, num_classes=3) as app:
            assert app.stats().frontend == frontend
            for name in MATRIX_ZOO.names():
                expected = _reference_logits(MATRIX_ZOO, name, frames)
                with app.client(model=name) as client:
                    results, _ = client.run(frames)
                for result, reference in zip(results, expected):
                    np.testing.assert_allclose(result.arrays["logits"],
                                               reference, atol=1e-9)
            assert app.stats().errors == 0

    def test_batched_serving_equivalent_under_async(self):
        """Micro-batched concurrent clients: batch purity and numbers hold
        under the async frontend."""
        frames = _frames(4)
        expected = _reference_logits(ZOO_V1, "m", frames)
        config = ServingConfig(
            server=ServerConfig(frontend=FRONTEND_ASYNC, max_workers=4),
            batching=BatchingConfig(max_batch_size=4, max_wait_ms=5.0))
        outputs = [[] for _ in range(3)]
        errors = []
        with serve(ZOO_V1, config, in_dim=3, num_classes=3) as app:
            def stream(index):
                try:
                    with app.client(model="m", name=f"c{index}") as client:
                        results, _ = client.run(frames)
                        outputs[index] = results
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=stream, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not errors
            stats = app.stats()
            assert stats.frames_processed == 12
        for results in outputs:
            assert len(results) == 4
            for result, reference in zip(results, expected):
                np.testing.assert_allclose(result.arrays["logits"],
                                           reference, atol=1e-9)


# ----------------------------------------------------------------------
# PR 4/5 guarantees re-verified under the async frontend
# ----------------------------------------------------------------------
class TestAsyncFrontendGuarantees:
    def test_idle_connections_beyond_max_workers(self):
        """max_workers bounds compute, not connections, under async."""
        server = EdgeServer(_echo_fn, frontend=FRONTEND_ASYNC,
                            max_workers=2).start()
        idle = []
        try:
            import socket as socket_mod
            for i in range(16):
                sock = socket_mod.create_connection(
                    (server.host, server.port), timeout=5.0)
                send_message(sock, Message(kind="hello",
                                           meta={"client": f"idle-{i}"}))
                idle.append(sock)
            wait_until(lambda: server.stats().active_sessions >= 16,
                       message="all idle sessions registered")
            assert server.stats().active_sessions == 16
            # A 17th, active client is served while all 16 idle: under the
            # threaded frontend max_workers=2 would park it in the backlog.
            client = DeviceClient(server.host, server.port)
            try:
                results, _ = client.run_pipeline(
                    [np.full((4,), 2.0)] * 4, _device_fn, timeout_s=30.0)
            finally:
                client.close()
            assert len(results) == 4
            np.testing.assert_allclose(results[0].arrays["y"],
                                       np.full((4,), 4.0))
            assert server.stats().errors == 0
        finally:
            for sock in idle:
                sock.close()
            server.stop()

    def test_hot_reload_snapshot_pinning_under_async(self):
        """Publish under live async traffic: every frame answered wholly
        from one snapshot (logits match exactly one version's reference)."""
        frames = _frames(2)
        ref_v1 = _reference_logits(ZOO_V1, "m", frames)
        ref_v2 = _reference_logits(ZOO_V2, "m", frames)
        repo = ModelRepository(in_dim=3, num_classes=3)
        config = ServingConfig(server=ServerConfig(frontend=FRONTEND_ASYNC))
        errors = []
        seen = []
        with serve(ZOO_V1, config, in_dim=3, num_classes=3,
                   repository=repo) as app:
            stop = threading.Event()

            def stream():
                try:
                    with app.client(model="m") as client:
                        while not stop.is_set():
                            results, _ = client.run(frames)
                            seen.extend(r.arrays["logits"] for r in results)
                except Exception as exc:
                    errors.append(exc)

            thread = threading.Thread(target=stream)
            thread.start()
            time.sleep(0.3)
            repo.publish(ZOO_V2)
            time.sleep(0.3)
            stop.set()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        assert not errors
        assert seen
        for logits in seen:
            assert _matches(logits, *ref_v1, *ref_v2), \
                "frame answered by a mixed snapshot"
        # Both versions actually served across the publish.
        assert any(_matches(logits, *ref_v2) for logits in seen)

    @pytest.mark.skipif(not sharding_supported("shm"),
                        reason="platform lacks shared memory")
    def test_shard_crash_gives_clean_errors_under_async(self):
        frames = _frames(2)
        config = ServingConfig(
            server=ServerConfig(frontend=FRONTEND_ASYNC),
            sharding=ShardingConfig(num_shards=2))
        with serve(ZOO_V1, config, in_dim=3, num_classes=3) as app:
            for shard in app.shard_pool._shards:
                shard.process.kill()
            wait_until(lambda: not any(s.alive for s in
                                       app.shard_pool.stats()),
                       message="all shards marked dead")
            started = time.monotonic()
            with app.client(model="m") as client:
                with pytest.raises(RuntimeError, match="(?i)shard"):
                    client.run(frames)
            # An error, not a burned pipeline timeout.
            assert time.monotonic() - started < 10.0
            # The server survived and still answers handshakes.
            with app.client(model="m") as client:
                assert client.handshake()["models"] == ["m"]


# ----------------------------------------------------------------------
# QoS x sharding: admission control must act BEFORE the shard boundary
# ----------------------------------------------------------------------
class TestQosShardingInteraction:
    @pytest.mark.skipif(not sharding_supported("shm"),
                        reason="platform lacks shared memory")
    @pytest.mark.parametrize("frontend", FRONTENDS)
    def test_expired_frames_never_cross_the_shard_ring(self, frontend):
        """A lapsed deadline sheds the frame on the frontend, not after
        paying the ring crossing: every shard's frame counter stays 0."""
        config = ServingConfig(
            server=ServerConfig(frontend=frontend),
            sharding=ShardingConfig(num_shards=2),
            # A long coalescing window guarantees the deadline lapses while
            # the frame is still queued on the parent side of the ring.
            batching=BatchingConfig(max_batch_size=8, max_wait_ms=50.0))
        frames = _frames(4)
        with serve(ZOO_V1, config, in_dim=3, num_classes=3) as app:
            client_config = ClientConfig(deadline_ms=0.0005,
                                         on_rejected="drop")
            with app.client(model="m", config=client_config) as client:
                results, stats = client.run(frames)
            assert results == []
            assert stats.frames_rejected == len(frames)
            server_stats = app.stats()
            assert server_stats.shed_by_reason == \
                {REJECT_REASON_DEADLINE: len(frames)}
            assert server_stats.frames_processed == 0
            # The invariant under test: no shed frame was ever submitted
            # to a worker process.
            assert server_stats.num_shards == 2
            assert [s.frames for s in server_stats.shards] == [0, 0]
            assert all(s.alive for s in server_stats.shards)

    @pytest.mark.parametrize("frontend", FRONTENDS)
    def test_rejected_reply_carries_retry_after_ms(self, frontend):
        """The wire-level ``rejected`` reply tells the client *when* to
        come back — on both frontends, with the policy's exact value."""
        def slow_batch(items):
            time.sleep(0.05)
            return [({"y": arrays["x"]}, meta) for arrays, meta in items]

        # The batched path queues frames on either frontend (the threaded
        # one executes direct frames inline, so only the batch queue can
        # actually fill there).
        server = EdgeServer(_echo_fn, batch_fns={"default": slow_batch},
                            max_batch_size=2, max_wait_ms=1.0,
                            frontend=frontend, max_workers=1,
                            qos=QosPolicy(max_queue_depth=1, fairness=False,
                                          retry_after_ms=33.0)).start()
        try:
            client = DeviceClient(server.host, server.port)
            try:
                with pytest.raises(RequestRejectedError) as excinfo:
                    client.run_pipeline([np.ones((4,))] * 12, _device_fn,
                                        timeout_s=60.0)
            finally:
                client.close()
            assert excinfo.value.reason == REJECT_REASON_CAPACITY
            assert excinfo.value.retry_after_ms == 33.0
        finally:
            server.stop()
