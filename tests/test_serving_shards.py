"""Process-parallel serving shards: correctness across the process boundary.

The sharded tier moves every engine call into worker processes, so each
serving guarantee must be re-pinned across that boundary:

* shard-served logits are numerically equivalent (<= 1e-9) to in-process
  serving, across aggregator x pool zoo entries;
* hot zoo reload under live sharded traffic keeps every frame wholly within
  one snapshot (publish hammer);
* a crashed shard produces clean per-frame ``ConnectionError``-style errors
  instead of hangs, and surviving shards keep serving;
* ``num_shards=1`` is the identity: no pool, no worker processes, byte-for-
  byte the in-process serving path.

The transport primitives (shared-memory ring, envelope framing) are covered
directly at the bottom — they must stay correct without a running server.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import (Architecture, ArchitectureModel, ArchitectureZoo,
                        ZooEntry)
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.runtime.shard import ShmRing, shm_available
from conftest import wait_until
from repro.serving import (BatchingConfig, ModelRepository, ServingConfig,
                           ShardCrashedError, ShardingConfig, serve,
                           sharding_supported)

pytestmark = pytest.mark.skipif(
    not sharding_supported("shm"),
    reason="platform lacks multiprocessing.shared_memory")


def _arch(name: str, k: int, width: int, aggregate: str = "max",
          pool: str = "max||mean") -> Architecture:
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=k),
        OpSpec(OpType.AGGREGATE, aggregate),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.COMBINE, width),
        OpSpec(OpType.GLOBAL_POOL, pool),
    ), name=name)


ZOO_V1 = ArchitectureZoo([ZooEntry("m", _arch("m", k=4, width=16),
                                   0.9, 40.0, 0.4)])
ZOO_V2 = ArchitectureZoo([ZooEntry("m", _arch("m", k=8, width=32),
                                   0.93, 55.0, 0.5)])

#: One entry per aggregator x pooling combination the design space uses.
MATRIX_ZOO = ArchitectureZoo([
    ZooEntry(f"{aggregate}-{pool}".replace("||", ""),
             _arch(f"{aggregate}-{pool}".replace("||", ""), k=4, width=16,
                   aggregate=aggregate, pool=pool),
             0.9, 40.0, 0.4)
    for aggregate in ("max", "mean", "add")
    for pool in ("max", "mean", "max||mean")
])


def _frames(count: int = 4):
    graphs = SyntheticModelNet40(num_points=24, samples_per_class=2,
                                 num_classes=3, seed=1).generate()
    return [Batch.from_graphs([graphs[i % len(graphs)]]) for i in range(count)]


def _reference_logits(zoo: ArchitectureZoo, name: str, frames) -> list:
    model = ArchitectureModel(zoo.get(name).architecture, in_dim=3,
                              num_classes=3, seed=0)
    return [model(frame).data for frame in frames]


def _sharded_config(num_shards: int = 2, **kwargs) -> ServingConfig:
    return ServingConfig(sharding=ShardingConfig(num_shards=num_shards,
                                                 **kwargs))


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestShardingConfig:
    def test_defaults_disabled(self):
        config = ShardingConfig()
        assert config.num_shards == 1 and not config.enabled

    def test_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardingConfig(num_shards=0)
        with pytest.raises(ValueError, match="transport"):
            ShardingConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="ring_bytes"):
            ShardingConfig(ring_bytes=1024)
        with pytest.raises(ValueError, match="request_timeout_s"):
            ShardingConfig(request_timeout_s=0.0)

    def test_round_trip(self):
        config = ServingConfig(sharding=ShardingConfig(num_shards=3,
                                                       transport="pipe"))
        rebuilt = ServingConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.sharding.num_shards == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="ShardingConfig"):
            ShardingConfig.from_dict({"num_shards": 2, "shards": 4})


# ----------------------------------------------------------------------
# Numerical equivalence: shard-served == in-process == direct model
# ----------------------------------------------------------------------
class TestShardEquivalence:
    def test_matrix_zoo_equivalent_to_in_process(self):
        """Every aggregator x pool entry: sharded logits == eager <= 1e-9."""
        frames = _frames(3)
        with serve(MATRIX_ZOO, _sharded_config(), in_dim=3,
                   num_classes=3) as app:
            assert app.sharded and app.shard_pool.live_count() == 2
            for name in MATRIX_ZOO.names():
                expected = _reference_logits(MATRIX_ZOO, name, frames)
                with app.client(model=name) as client:
                    results, _ = client.run(frames)
                for result, reference in zip(results, expected):
                    np.testing.assert_allclose(result.arrays["logits"],
                                               reference, atol=1e-9)
            stats = app.stats()
            assert stats.num_shards == 2
            # The round-robin router actually used both worker processes.
            assert all(shard.frames > 0 for shard in stats.shards)
            assert sum(shard.frames for shard in stats.shards) == \
                stats.frames_processed

    def test_batched_sharded_serving_equivalent(self):
        """Micro-batches executed on shards match per-frame references."""
        frames = _frames(4)
        expected = _reference_logits(ZOO_V1, "m", frames)
        config = ServingConfig(
            sharding=ShardingConfig(num_shards=2),
            batching=BatchingConfig(max_batch_size=4, max_wait_ms=5.0))
        outputs = [[] for _ in range(3)]
        with serve(ZOO_V1, config, in_dim=3, num_classes=3) as app:
            def stream(index):
                with app.client(model="m", name=f"c{index}") as client:
                    results, _ = client.run(frames)
                    outputs[index] = results

            threads = [threading.Thread(target=stream, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            stats = app.stats()
        for results in outputs:
            assert len(results) == len(frames)
            for result, reference in zip(results, expected):
                np.testing.assert_allclose(result.arrays["logits"],
                                           reference, atol=1e-9)
        assert stats.batches_dispatched > 0
        assert stats.batch_fallback_frames == 0

    def test_pipe_transport_equivalent(self):
        frames = _frames(2)
        expected = _reference_logits(ZOO_V1, "m", frames)
        with serve(ZOO_V1, _sharded_config(transport="pipe"), in_dim=3,
                   num_classes=3) as app:
            with app.client(model="m") as client:
                results, _ = client.run(frames)
        for result, reference in zip(results, expected):
            np.testing.assert_allclose(result.arrays["logits"], reference,
                                       atol=1e-9)


# ----------------------------------------------------------------------
# num_shards=1 fallback identity
# ----------------------------------------------------------------------
class TestInProcessFallback:
    def test_single_shard_serves_in_process(self):
        frames = _frames(2)
        expected = _reference_logits(ZOO_V1, "m", frames)
        with serve(ZOO_V1, _sharded_config(num_shards=1), in_dim=3,
                   num_classes=3) as app:
            assert not app.sharded and app.shard_pool is None
            with app.client(model="m") as client:
                results, _ = client.run(frames)
            stats = app.stats()
        assert stats.num_shards == 0 and stats.shards == []
        for result, reference in zip(results, expected):
            np.testing.assert_allclose(result.arrays["logits"], reference,
                                       atol=1e-9)

    def test_pool_rejects_single_shard(self):
        from repro.serving.sharding import ShardPool
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        with pytest.raises(ValueError, match="num_shards"):
            ShardPool(repo, ShardingConfig(num_shards=1))


# ----------------------------------------------------------------------
# Hot reload under live sharded traffic
# ----------------------------------------------------------------------
class TestShardedHotReload:
    def test_publish_replicates_before_swap(self):
        """After publish() returns, every shard already holds the snapshot."""
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        with serve(ZOO_V1, _sharded_config(), in_dim=3, num_classes=3,
                   repository=repo) as app:
            assert [s.snapshot_version for s in app.shard_pool.stats()] == \
                [1, 1]
            repo.publish(ZOO_V2)
            assert [s.snapshot_version for s in app.shard_pool.stats()] == \
                [2, 2]

    def test_publish_hammer_under_live_sharded_traffic(self):
        """3 clients x repeated publishes: every frame from one snapshot."""
        frames = _frames(4)
        references = (_reference_logits(ZOO_V1, "m", frames),
                      _reference_logits(ZOO_V2, "m", frames))
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        config = ServingConfig(
            sharding=ShardingConfig(num_shards=2),
            batching=BatchingConfig(max_batch_size=4, max_wait_ms=2.0))
        outputs, errors = [], []
        rounds_per_client = 5

        with serve(ZOO_V1, config, in_dim=3, num_classes=3,
                   repository=repo) as app:
            def stream(index):
                try:
                    with app.client(model="m", name=f"c{index}") as client:
                        for _ in range(rounds_per_client):
                            results, _ = client.run(frames)
                            outputs.extend(
                                (r.frame_id % len(frames), r.arrays["logits"])
                                for r in results)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=stream, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for zoo in (ZOO_V2, ZOO_V1, ZOO_V2):
                time.sleep(0.05)
                repo.publish(zoo)
            for thread in threads:
                thread.join(timeout=120.0)
        assert not errors, errors
        assert len(outputs) == 3 * rounds_per_client * len(frames)
        for frame_index, logits in outputs:
            refs = [ref[frame_index] for ref in references]
            assert any(np.allclose(logits, ref, atol=1e-8) for ref in refs), (
                f"frame {frame_index} matches no snapshot's reference — "
                "mixed device/edge halves across the process boundary?")


# ----------------------------------------------------------------------
# Crash isolation
# ----------------------------------------------------------------------
class TestShardCrash:
    def test_all_shards_down_gives_clean_per_frame_errors(self):
        frames = _frames(2)
        with serve(ZOO_V1, _sharded_config(), in_dim=3, num_classes=3) as app:
            for shard in app.shard_pool._shards:
                shard.process.kill()
            wait_until(lambda: not any(s.alive for s in
                                       app.shard_pool.stats()),
                       message="all shards marked dead")
            started = time.monotonic()
            with app.client(model="m") as client:
                with pytest.raises(RuntimeError, match="(?i)shard"):
                    client.run(frames)
            # An error, not a burned pipeline timeout.
            assert time.monotonic() - started < 10.0
            stats = app.stats()
            assert stats.num_shards == 2
            assert not any(shard.alive for shard in stats.shards)
            # The server itself survived and still answers handshakes.
            with app.client(model="m") as client:
                assert client.handshake()["models"] == ["m"]

    def test_surviving_shard_keeps_serving(self):
        frames = _frames(2)
        expected = _reference_logits(ZOO_V1, "m", frames)
        with serve(ZOO_V1, _sharded_config(), in_dim=3, num_classes=3) as app:
            victim = app.shard_pool._shards[0]
            victim.process.kill()
            wait_until(lambda: not victim.alive,
                       message="victim shard marked dead")
            # New traffic is routed around the corpse.
            with app.client(model="m") as client:
                results, _ = client.run(frames)
            for result, reference in zip(results, expected):
                np.testing.assert_allclose(result.arrays["logits"],
                                           reference, atol=1e-9)
            assert app.shard_pool.live_count() == 1

    def test_in_flight_request_fails_with_connection_error(self):
        """A request stuck on a dying shard errors out instead of hanging."""
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        from repro.serving.sharding import ShardPool
        pool = ShardPool(repo, ShardingConfig(num_shards=2)).start()
        try:
            shard = pool._shards[0]
            arrays, meta = repo.device_fn("m")(_frames(1)[0])
            failures = []

            def request():
                try:
                    shard.request_frame("m", arrays, meta)
                except Exception as exc:
                    failures.append(exc)

            # Kill the worker, then issue the request against the corpse:
            # the reader thread's liveness poll must fail it promptly.
            shard.process.kill()
            shard.process.join(timeout=10.0)
            thread = threading.Thread(target=request)
            thread.start()
            thread.join(timeout=15.0)
            assert not thread.is_alive(), "in-flight request hung"
            assert len(failures) == 1
            assert isinstance(failures[0], ConnectionError)
        finally:
            pool.stop()


# ----------------------------------------------------------------------
# Transport primitives (no server involved)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shm_available(), reason="no shared memory")
class TestShmRing:
    def _ring(self, capacity=1 << 16):
        ring = ShmRing.create(capacity)
        attached = ShmRing.attach(ring.handle())
        return ring, attached

    def test_round_trip_and_wraparound(self):
        ring, peer = self._ring(capacity=1 << 10)
        try:
            payloads = [bytes([i]) * (200 + i) for i in range(40)]
            for blob in payloads:  # > capacity in total: must wrap
                ring.send_bytes(blob)
                assert peer.recv_bytes(timeout=1.0) == blob
        finally:
            peer.close()
            ring.close()
            ring.unlink()

    def test_interleaved_backpressure(self):
        ring, peer = self._ring(capacity=1 << 12)
        received = []

        def drain():
            while True:
                blob = peer.recv_bytes(timeout=1.0)
                if blob == b"stop":
                    return
                received.append(blob)

        thread = threading.Thread(target=drain)
        thread.start()
        try:
            blobs = [bytes([i % 256]) * 1000 for i in range(64)]
            for blob in blobs:  # 64 KB through a 4 KB ring
                ring.send_bytes(blob, timeout=10.0)
            ring.send_bytes(b"stop", timeout=10.0)
            thread.join(timeout=30.0)
            assert received == blobs
        finally:
            thread.join(timeout=1.0)
            peer.close()
            ring.close()
            ring.unlink()

    def test_oversized_message_rejected(self):
        ring, peer = self._ring(capacity=1 << 16)
        try:
            with pytest.raises(ValueError, match="ring"):
                ring.send_bytes(b"x" * (1 << 17))
        finally:
            peer.close()
            ring.close()
            ring.unlink()

    def test_recv_timeout_returns_none(self):
        ring, peer = self._ring()
        try:
            started = time.monotonic()
            assert peer.recv_bytes(timeout=0.05) is None
            assert time.monotonic() - started < 1.0
        finally:
            peer.close()
            ring.close()
            ring.unlink()

    def test_full_ring_times_out(self):
        ring, peer = self._ring(capacity=1 << 10)
        try:
            ring.send_bytes(b"y" * 900)
            with pytest.raises(TimeoutError, match="full"):
                ring.send_bytes(b"y" * 900, timeout=0.1)
        finally:
            peer.close()
            ring.close()
            ring.unlink()
