"""Tests for multi-client concurrent serving on the edge engine.

Covers the serving subsystem of :mod:`repro.system.engine`: one
:class:`EdgeServer` handling several :class:`DeviceClient` connections at
once, per-session/aggregate statistics, edge-error propagation, and
dispatcher-driven multi-model serving keyed by announced runtime conditions.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import (Architecture, ArchitectureZoo, RuntimeDispatcher,
                        ZooEntry)
from repro.serving import build_zoo_callables
from repro.gnn import OpSpec, OpType
from repro.system import DeviceClient, EdgeServer


def _device_fn(frame):
    return {"x": np.asarray(frame, dtype=np.float64)}, {"scale": 2.0}


def _edge_fn(arrays, meta):
    return {"y": arrays["x"] * meta["scale"]}, {"done": True}


class TestConcurrentServing:
    def test_three_clients_served_concurrently(self):
        num_clients, frames_per_client = 3, 8
        server = EdgeServer(_edge_fn, max_workers=4).start()
        outputs = {}
        errors = []

        def run_client(index):
            client = DeviceClient(server.host, server.port,
                                  client_name=f"client-{index}")
            try:
                frames = [np.full((4, 2), index * 100 + i, dtype=float)
                          for i in range(frames_per_client)]
                results, stats = client.run_pipeline(frames, _device_fn)
                outputs[index] = (frames, results, stats)
            except Exception as exc:  # surfaced after join
                errors.append((index, exc))
            finally:
                client.close()

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(num_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        try:
            assert not errors, f"client failures: {errors}"
            assert len(outputs) == num_clients
            # Per-client result integrity: every client sees exactly its own
            # frames, doubled, in order.
            for index, (frames, results, stats) in outputs.items():
                assert [r.frame_id for r in results] == list(range(frames_per_client))
                for frame, result in zip(frames, results):
                    np.testing.assert_allclose(result.arrays["y"], frame * 2.0)
                assert stats.num_frames == frames_per_client
            assert server.frames_processed == num_clients * frames_per_client
            stats = server.stats()
            assert stats.num_sessions == num_clients
            assert stats.frames_processed == num_clients * frames_per_client
            assert stats.errors == 0
            assert stats.bytes_received > 0 and stats.bytes_sent > 0
            assert stats.mean_service_time_s >= 0.0
            assert stats.throughput_fps > 0.0
            names = {s.client_name for s in stats.sessions}
            assert names == {f"client-{i}" for i in range(num_clients)}
            assert all(s.frames == frames_per_client for s in stats.sessions)
        finally:
            server.stop()
        assert server.stats().active_sessions == 0
        # The wall clock freezes at stop(): later snapshots report the same
        # serving-time throughput.
        first, second = server.stats().wall_time_s, server.stats().wall_time_s
        assert first == second

    def test_sessions_can_exceed_worker_pool(self):
        """More sequential connections than worker slots are all served."""
        server = EdgeServer(_edge_fn, max_workers=2).start()
        try:
            for index in range(5):
                client = DeviceClient(server.host, server.port)
                try:
                    results, _ = client.run_pipeline([np.ones((2, 2)) * index],
                                                     _device_fn)
                    np.testing.assert_allclose(results[0].arrays["y"],
                                               np.ones((2, 2)) * index * 2.0)
                finally:
                    client.close()
        finally:
            server.stop()
        assert server.stats().num_sessions == 5

    def test_concurrent_clients_beyond_pool_all_complete(self):
        """Simultaneous connections above max_workers wait their turn and finish."""
        server = EdgeServer(_edge_fn, max_workers=2).start()
        failures = []

        def run(index):
            client = DeviceClient(server.host, server.port)
            try:
                results, _ = client.run_pipeline([np.ones((2, 2)) * index] * 2,
                                                 _device_fn, timeout_s=30.0)
                for result in results:
                    np.testing.assert_allclose(result.arrays["y"],
                                               np.ones((2, 2)) * index * 2.0)
            except Exception as exc:
                failures.append((index, exc))
            finally:
                client.close()

        threads = [threading.Thread(target=run, args=(i,)) for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        server.stop()
        assert not failures, f"clients failed: {failures}"
        assert server.stats().frames_processed == 10

    def test_hello_handshake_reports_server_info(self):
        server = EdgeServer(_edge_fn, edge_fns={"only": _edge_fn}).start()
        client = DeviceClient(server.host, server.port, client_name="probe")
        try:
            info = client.handshake()
            # Every routable name is advertised, including the default bucket.
            assert info["models"] == ["default", "only"]
            assert info["session_id"] == 0
        finally:
            client.close()
            server.stop()
        assert server.stats().sessions[0].client_name == "probe"

    def test_session_log_is_bounded_but_aggregates_are_not(self):
        """Old closed sessions fold into the totals instead of leaking."""
        server = EdgeServer(_edge_fn, session_log_limit=2).start()
        try:
            for index in range(5):
                client = DeviceClient(server.host, server.port,
                                      client_name=f"burst-{index}")
                try:
                    client.run_pipeline([np.ones((2, 2))], _device_fn,
                                        timeout_s=10.0)
                finally:
                    client.close()
        finally:
            server.stop()
        stats = server.stats()
        assert stats.num_sessions == 5
        assert stats.frames_processed == 5
        assert server.frames_processed == 5
        assert stats.frames_by_model == {"default": 5}
        assert len(stats.sessions) <= 2  # only the most recent are retained
        # Session ids keep increasing even after eviction.
        assert stats.sessions[-1].session_id == 4

    def test_handshake_fails_fast_when_peer_closes_before_ack(self):
        """A hello that will never be answered must not burn the timeout."""
        import time as _time

        from conftest import fake_peer

        with fake_peer(lambda conn: conn.close()) as (host, port):
            client = DeviceClient(host, port)
            started = _time.perf_counter()
            try:
                with pytest.raises(ConnectionError, match="before the hello"):
                    client.handshake(timeout_s=30.0)
                assert _time.perf_counter() - started < 10.0
            finally:
                client.close()

    def test_connect_timeout_does_not_cut_slow_edge_responses(self):
        """The client timeout guards connecting, not waiting for results."""
        import time as _time

        def slow_edge_fn(arrays, meta):
            _time.sleep(1.2)
            return _edge_fn(arrays, meta)

        server = EdgeServer(slow_edge_fn).start()
        client = DeviceClient(server.host, server.port, timeout_s=0.5)
        try:
            results, _ = client.run_pipeline([np.ones((2, 2))], _device_fn,
                                             timeout_s=10.0)
            np.testing.assert_allclose(results[0].arrays["y"], np.ones((2, 2)) * 2.0)
        finally:
            client.close()
            server.stop()

    def test_default_frames_attributed_to_real_entry_name(self):
        """edge_fns-only servers book untagged frames under the entry that ran."""
        server = EdgeServer(edge_fns={"only": _edge_fn}).start()
        client = DeviceClient(server.host, server.port)
        try:
            client.run_pipeline([np.ones((2, 2))], _device_fn, timeout_s=10.0)
        finally:
            client.close()
            server.stop()
        assert server.stats().frames_by_model == {"only": 1}

    def test_rejects_empty_configuration(self):
        with pytest.raises(ValueError):
            EdgeServer()
        with pytest.raises(ValueError):
            EdgeServer(_edge_fn, max_workers=0)
        # A named entry the default would shadow is a misconfiguration.
        with pytest.raises(ValueError, match="reserved"):
            EdgeServer(_edge_fn, edge_fns={"default": _edge_fn})


class TestErrorPropagation:
    @staticmethod
    def _flaky_edge_fn(arrays, meta):
        if meta.get("explode"):
            raise ValueError("synthetic edge failure")
        return _edge_fn(arrays, meta)

    def test_edge_exception_reaches_client_with_traceback(self):
        server = EdgeServer(self._flaky_edge_fn).start()
        client = DeviceClient(server.host, server.port)

        def bad_device_fn(frame):
            arrays, meta = _device_fn(frame)
            meta["explode"] = True
            return arrays, meta

        try:
            with pytest.raises(RuntimeError) as excinfo:
                client.run_pipeline([np.ones((2, 2))], bad_device_fn, timeout_s=10.0)
            text = str(excinfo.value)
            assert "synthetic edge failure" in text
            assert "Traceback" in text  # remote traceback travels with the error
        finally:
            client.close()
        # The server survives the failure and keeps serving new clients.
        client2 = DeviceClient(server.host, server.port)
        try:
            results, _ = client2.run_pipeline([np.ones((2, 2))], _device_fn,
                                              timeout_s=10.0)
            np.testing.assert_allclose(results[0].arrays["y"], np.ones((2, 2)) * 2.0)
        finally:
            client2.close()
            server.stop()
        assert server.stats().errors == 1

    def test_retry_after_edge_error_is_not_corrupted_by_stale_results(self):
        """Leftover results of an aborted run must not leak into the next one."""
        server = EdgeServer(self._flaky_edge_fn).start()
        client = DeviceClient(server.host, server.port)

        first_call = {"pending": True}

        def sometimes_bad_device_fn(frame):
            arrays, meta = _device_fn(frame)
            if first_call.pop("pending", None):
                meta["explode"] = True  # only the very first frame fails
            return arrays, meta

        try:
            with pytest.raises(RuntimeError, match="synthetic edge failure"):
                # Frames 1 and 2 are still served after the error for frame 0
                # and linger in the client's result queue.
                client.run_pipeline([np.full((2, 2), v, dtype=float)
                                     for v in (1.0, 2.0, 3.0)],
                                    sometimes_bad_device_fn, timeout_s=10.0)
            retry_frames = [np.full((2, 2), v, dtype=float) for v in (7.0, 9.0)]
            results, _ = client.run_pipeline(retry_frames, _device_fn,
                                             timeout_s=10.0)
            assert [r.frame_id for r in results] == [0, 1]
            for frame, result in zip(retry_frames, results):
                np.testing.assert_allclose(result.arrays["y"], frame * 2.0)
        finally:
            client.close()
            server.stop()

    def test_lost_connection_fails_fast_not_on_timeout(self):
        """A dying server must raise promptly, not burn the whole timeout."""
        import time as _time

        def slow_edge_fn(arrays, meta):
            _time.sleep(0.5)
            return _edge_fn(arrays, meta)

        server = EdgeServer(slow_edge_fn).start()
        client = DeviceClient(server.host, server.port)
        killer = threading.Timer(0.2, server.stop)
        killer.start()
        started = _time.perf_counter()
        try:
            with pytest.raises(ConnectionError, match="outstanding"):
                client.run_pipeline([np.ones((2, 2))] * 3, _device_fn,
                                    timeout_s=30.0)
            assert _time.perf_counter() - started < 15.0  # nowhere near timeout_s
            # A retry on the known-dead connection fails immediately too.
            with pytest.raises(ConnectionError, match="already lost"):
                client.run_pipeline([np.ones((2, 2))], _device_fn, timeout_s=30.0)
        finally:
            killer.cancel()
            client.close()
            server.stop()

    def test_selector_failure_surfaces_in_handshake(self):
        """A dispatch crash must answer the hello, not leave the client hanging."""
        def broken_selector(meta):
            raise ValueError("bad conditions payload")

        server = EdgeServer(edge_fns={"only": _edge_fn},
                            selector=broken_selector).start()
        client = DeviceClient(server.host, server.port,
                              conditions={"latency_budget_ms": "not-a-number"})
        try:
            with pytest.raises(RuntimeError, match="bad conditions payload"):
                client.handshake(timeout_s=10.0)
        finally:
            client.close()
        # The server survives and still answers well-formed clients.
        client2 = DeviceClient(server.host, server.port, model="only")
        try:
            results, _ = client2.run_pipeline([np.ones((2, 2))], _device_fn,
                                              timeout_s=10.0)
            np.testing.assert_allclose(results[0].arrays["y"], np.ones((2, 2)) * 2.0)
        finally:
            client2.close()
            server.stop()
        assert server.stats().errors == 1

    def test_dispatched_model_missing_from_edge_fns_is_reported(self):
        server = EdgeServer(edge_fns={"present": _edge_fn},
                            selector=lambda meta: "absent").start()
        client = DeviceClient(server.host, server.port,
                              conditions={"latency_budget_ms": 10.0})
        try:
            with pytest.raises(RuntimeError, match="absent"):
                client.handshake(timeout_s=10.0)
        finally:
            client.close()
            server.stop()

    def test_unserializable_edge_reply_returns_error_not_dead_connection(self):
        """A reply the wire format cannot encode must come back as an error."""
        def bad_meta_edge_fn(arrays, meta):
            return {"y": arrays["x"]}, {"count": np.int64(3)}  # not JSON-serializable

        server = EdgeServer(bad_meta_edge_fn).start()
        client = DeviceClient(server.host, server.port)
        try:
            with pytest.raises(RuntimeError, match="TypeError"):
                client.run_pipeline([np.ones((2, 2))], _device_fn, timeout_s=10.0)
        finally:
            client.close()
            server.stop()
        stats = server.stats()
        assert stats.errors == 1
        assert stats.frames_processed == 0  # never delivered, never counted

    def test_pipeline_timeout_raises_timeout_error_not_queue_empty(self):
        """An expired wait must surface as TimeoutError, not queue.Empty."""
        import time as _time

        def hanging_edge_fn(arrays, meta):
            _time.sleep(5.0)
            return _edge_fn(arrays, meta)

        server = EdgeServer(hanging_edge_fn).start()
        client = DeviceClient(server.host, server.port)
        try:
            with pytest.raises(TimeoutError, match="timed out"):
                client.run_pipeline([np.ones((2, 2))], _device_fn, timeout_s=0.3)
        finally:
            client.close()
            server.stop()

    def test_unserializable_outgoing_meta_fails_fast(self):
        """Device-side metadata the wire format cannot encode must not hang."""
        import time as _time

        def bad_meta_device_fn(frame):
            arrays, meta = _device_fn(frame)
            meta["count"] = np.int64(3)  # not JSON-serializable
            return arrays, meta

        server = EdgeServer(_edge_fn).start()
        client = DeviceClient(server.host, server.port)
        started = _time.perf_counter()
        try:
            with pytest.raises(ConnectionError, match="serialize"):
                client.run_pipeline([np.ones((2, 2))], bad_meta_device_fn,
                                    timeout_s=30.0)
            assert _time.perf_counter() - started < 10.0
        finally:
            client.close()
            server.stop()

    def test_corrupt_stream_from_server_fails_fast(self):
        """Garbage on the wire must surface as a disconnect, not a timeout."""
        import struct as _struct
        import time as _time

        from conftest import fake_peer

        def send_garbage(conn):
            conn.sendall(_struct.pack(">I", 7) + b"garbage")  # not valid zlib

        with fake_peer(send_garbage) as (host, port):
            client = DeviceClient(host, port)
            started = _time.perf_counter()
            try:
                with pytest.raises(ConnectionError, match="malformed"):
                    client.run_pipeline([np.ones((2, 2))], _device_fn,
                                        timeout_s=30.0)
                assert _time.perf_counter() - started < 10.0
            finally:
                client.close()

    def test_unknown_model_is_reported_not_fatal(self):
        server = EdgeServer(_edge_fn, edge_fns={"known": _edge_fn}).start()
        client = DeviceClient(server.host, server.port, model="missing")
        try:
            with pytest.raises(RuntimeError, match="missing"):
                client.run_pipeline([np.ones((2, 2))], _device_fn, timeout_s=10.0)
        finally:
            client.close()
            server.stop()


class TestDispatchedServing:
    @staticmethod
    def _zoo() -> ArchitectureZoo:
        def arch(name):
            return Architecture(ops=(
                OpSpec(OpType.SAMPLE, "knn", k=4),
                OpSpec(OpType.AGGREGATE, "max"),
                OpSpec(OpType.COMMUNICATE, "uplink"),
                OpSpec(OpType.COMBINE, 16),
                OpSpec(OpType.GLOBAL_POOL, "mean"),
            ), name=name)
        return ArchitectureZoo([
            ZooEntry("accurate", arch("accurate"), 0.95, 80.0, 0.8),
            ZooEntry("fast", arch("fast"), 0.90, 25.0, 0.3),
        ])

    def test_conditions_route_to_matching_model(self):
        dispatcher = RuntimeDispatcher(self._zoo())
        doubler = lambda arrays, meta: ({"y": arrays["x"] * 2.0}, {"model": "fast"})
        tripler = lambda arrays, meta: ({"y": arrays["x"] * 3.0}, {"model": "accurate"})
        server = EdgeServer(edge_fns={"fast": doubler, "accurate": tripler},
                            selector=dispatcher.select_for_meta).start()
        tight = DeviceClient(server.host, server.port, client_name="tight",
                             conditions={"latency_budget_ms": 30.0})
        loose = DeviceClient(server.host, server.port, client_name="loose",
                             conditions={"latency_budget_ms": 200.0})
        try:
            assert tight.assigned_model == "fast"
            assert loose.assigned_model == "accurate"
            frames = [np.ones((2, 2))] * 3
            tight_results, _ = tight.run_pipeline(frames, _device_fn)
            loose_results, _ = loose.run_pipeline(frames, _device_fn)
            for result in tight_results:
                np.testing.assert_allclose(result.arrays["y"], np.ones((2, 2)) * 2.0)
            for result in loose_results:
                np.testing.assert_allclose(result.arrays["y"], np.ones((2, 2)) * 3.0)
        finally:
            tight.close()
            loose.close()
            server.stop()
        stats = server.stats()
        assert stats.frames_by_model == {"fast": 3, "accurate": 3}

    def test_default_model_name_resolves_on_mixed_server(self):
        """The name stats report for default frames must itself be routable."""
        server = EdgeServer(_edge_fn,
                            edge_fns={"other": lambda a, m: ({"y": a["x"] * 3.0}, {})}
                            ).start()
        client = DeviceClient(server.host, server.port, model="default")
        try:
            results, _ = client.run_pipeline([np.ones((2, 2))], _device_fn,
                                             timeout_s=10.0)
            np.testing.assert_allclose(results[0].arrays["y"], np.ones((2, 2)) * 2.0)
        finally:
            client.close()
            server.stop()
        assert server.stats().frames_by_model == {"default": 1}

    def test_explicit_model_overrides_selector(self):
        dispatcher = RuntimeDispatcher(self._zoo())
        server = EdgeServer(
            edge_fns={"fast": lambda a, m: ({"y": a["x"] * 2.0}, {}),
                      "accurate": lambda a, m: ({"y": a["x"] * 3.0}, {})},
            selector=dispatcher.select_for_meta).start()
        client = DeviceClient(server.host, server.port, model="accurate")
        try:
            results, _ = client.run_pipeline([np.ones((2, 2))], _device_fn)
            np.testing.assert_allclose(results[0].arrays["y"], np.ones((2, 2)) * 3.0)
        finally:
            client.close()
            server.stop()

    def test_zoo_callables_serve_real_models(self, tiny_modelnet, modelnet_profile):
        """End-to-end: dispatcher-selected ArchitectureModel entries over sockets."""
        from repro.core import ArchitectureModel, split_callables
        from repro.graph.data import Batch

        zoo = self._zoo()
        pairs = {name: (serving.device_fn, serving.edge_fn)
                 for name, serving in build_zoo_callables(
                     zoo, in_dim=modelnet_profile.feature_dim,
                     num_classes=modelnet_profile.num_classes,
                     seed=0).items()}
        assert set(pairs) == {"accurate", "fast"}
        dispatcher = RuntimeDispatcher(zoo)
        server = EdgeServer(edge_fns={name: pair[1] for name, pair in pairs.items()},
                            selector=dispatcher.select_for_meta).start()
        client = DeviceClient(server.host, server.port,
                              conditions={"latency_budget_ms": 30.0})
        try:
            assigned = client.assigned_model
            assert assigned == "fast"
            device_fn = pairs[assigned][0]
            frames = [Batch.from_graphs([g]) for g in tiny_modelnet.test[:2]]
            results, _ = client.run_pipeline(frames, device_fn)
            # Served logits must match a local forward of the same entry.
            model = ArchitectureModel(zoo.get(assigned).architecture,
                                      in_dim=modelnet_profile.feature_dim,
                                      num_classes=modelnet_profile.num_classes,
                                      seed=0)
            local = model(frames[0]).data
            np.testing.assert_allclose(results[0].arrays["logits"], local, atol=1e-8)
        finally:
            client.close()
            server.stop()
