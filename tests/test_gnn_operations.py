"""Tests for the design-space operations, their executable semantics and layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.graph.data import Batch, GraphData
from repro.gnn import (AggregateOp, ClassifierOp, CombineOp, CommunicateOp,
                       EdgeConv, ExecState, GCNConv, GINConv, GlobalPoolOp,
                       IdentityOp, OpSpec, OpType, SampleOp, build_operation)
from repro.gnn.models import DGCNN, GINClassifier, dgcnn_opspecs, li_optimized_opspecs
from repro.gnn.models.gin import text_gnn_opspecs, pnas_opspecs


def make_state(num_nodes=8, dim=3, num_graphs=2, with_edges=False, seed=0):
    rng = np.random.default_rng(seed)
    batch = np.repeat(np.arange(num_graphs), num_nodes // num_graphs)
    edge_index = None
    if with_edges:
        src = rng.integers(0, num_nodes, size=2 * num_nodes)
        dst = rng.integers(0, num_nodes, size=2 * num_nodes)
        edge_index = np.stack([src, dst])
    return ExecState(x=nn.Tensor(rng.standard_normal((num_nodes, dim))),
                     batch=batch, num_graphs=num_graphs, edge_index=edge_index)


class TestOpSpec:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            OpSpec("convolve", "max")

    def test_channels_only_for_combine(self):
        assert OpSpec(OpType.COMBINE, 32).channels == 32
        assert OpSpec(OpType.AGGREGATE, "max").channels is None

    def test_short_names(self):
        assert OpSpec(OpType.SAMPLE, "knn", k=5).short_name() == "sample(knn,k=5)"
        assert OpSpec(OpType.COMBINE, 64).short_name() == "combine(64)"
        assert OpSpec(OpType.COMMUNICATE, "uplink").short_name() == "communicate"


class TestSampleOp:
    def test_knn_sample_builds_edges(self):
        state = make_state()
        SampleOp(OpSpec(OpType.SAMPLE, "knn", k=2))(state)
        assert state.edge_index is not None
        assert state.edge_index.shape == (2, 16)

    def test_random_sample_builds_edges(self):
        state = make_state()
        SampleOp(OpSpec(OpType.SAMPLE, "random", k=3), seed=1)(state)
        assert state.edge_index.shape == (2, 24)

    def test_sample_after_pool_raises(self):
        state = make_state()
        state.pooled = True
        with pytest.raises(RuntimeError):
            SampleOp(OpSpec(OpType.SAMPLE, "knn", k=2))(state)

    def test_edges_stay_within_graphs(self):
        state = make_state(num_nodes=10, num_graphs=2)
        SampleOp(OpSpec(OpType.SAMPLE, "knn", k=2))(state)
        src, dst = state.edge_index
        assert np.array_equal(state.batch[src], state.batch[dst])


class TestAggregateOp:
    def test_doubles_feature_dim(self):
        state = make_state(with_edges=True, dim=4)
        AggregateOp(OpSpec(OpType.AGGREGATE, "max"))(state)
        assert state.feature_dim == 8

    def test_requires_edges(self):
        state = make_state(with_edges=False)
        with pytest.raises(RuntimeError):
            AggregateOp(OpSpec(OpType.AGGREGATE, "mean"))(state)

    def test_mean_aggregation_of_identical_neighbours_preserves_centre(self):
        # All nodes identical: [x_i, x_j - x_i] = [x, 0] for every edge.
        x = np.tile(np.array([[1.0, 2.0]]), (4, 1))
        edge_index = np.array([[1, 2, 3, 0], [0, 1, 2, 3]])
        state = ExecState(x=nn.Tensor(x), batch=np.zeros(4, dtype=np.int64),
                          num_graphs=1, edge_index=edge_index)
        AggregateOp(OpSpec(OpType.AGGREGATE, "mean"))(state)
        np.testing.assert_allclose(state.x.data[:, :2], x)
        np.testing.assert_allclose(state.x.data[:, 2:], 0.0)


class TestCombineAndPool:
    def test_combine_output_dim(self):
        state = make_state(dim=6)
        op = CombineOp(OpSpec(OpType.COMBINE, 16), in_dim=6,
                       rng=np.random.default_rng(0))
        op(state)
        assert state.feature_dim == 16
        assert (state.x.data >= 0).all()  # ReLU output

    def test_combine_requires_positive_channels(self):
        with pytest.raises(ValueError):
            CombineOp(OpSpec(OpType.COMBINE, 0), in_dim=4)

    def test_global_pool_collapses_nodes(self):
        state = make_state(num_nodes=8, num_graphs=2)
        GlobalPoolOp(OpSpec(OpType.GLOBAL_POOL, "mean"))(state)
        assert state.num_nodes == 2 and state.pooled
        assert state.edge_index is None

    def test_double_pool_raises(self):
        state = make_state()
        GlobalPoolOp(OpSpec(OpType.GLOBAL_POOL, "max"))(state)
        with pytest.raises(RuntimeError):
            GlobalPoolOp(OpSpec(OpType.GLOBAL_POOL, "max"))(state)

    def test_maxmean_pool_doubles_width(self):
        state = make_state(dim=5)
        GlobalPoolOp(OpSpec(OpType.GLOBAL_POOL, "max||mean"))(state)
        assert state.feature_dim == 10

    def test_identity_and_communicate_are_noops(self):
        state = make_state()
        before = state.x.data.copy()
        IdentityOp(OpSpec(OpType.IDENTITY, "skip"))(state)
        CommunicateOp(OpSpec(OpType.COMMUNICATE, "uplink"))(state)
        np.testing.assert_allclose(state.x.data, before)


class TestClassifier:
    def test_classifier_output_shape(self):
        state = make_state(num_nodes=6, dim=4, num_graphs=2)
        GlobalPoolOp(OpSpec(OpType.GLOBAL_POOL, "mean"))(state)
        op = ClassifierOp(OpSpec(OpType.CLASSIFIER, "mlp"), in_dim=4,
                          num_classes=7, rng=np.random.default_rng(0))
        op(state)
        assert state.x.shape == (2, 7)

    def test_classifier_pools_defensively_when_not_pooled(self):
        state = make_state(num_nodes=6, dim=4, num_graphs=3)
        op = ClassifierOp(OpSpec(OpType.CLASSIFIER, "mlp"), in_dim=4, num_classes=2)
        op(state)
        assert state.x.shape == (3, 2)

    def test_build_operation_dispatch(self):
        assert isinstance(build_operation(OpSpec(OpType.SAMPLE, "knn"), 3), SampleOp)
        assert isinstance(build_operation(OpSpec(OpType.COMBINE, 8), 3), CombineOp)
        with pytest.raises(ValueError):
            build_operation(OpSpec(OpType.INPUT, "input"), 3)


class TestLayers:
    def _batch(self, num_nodes=10, dim=4, seed=0):
        rng = np.random.default_rng(seed)
        graphs = [GraphData(x=rng.standard_normal((num_nodes, dim)),
                            edge_index=np.stack([rng.integers(0, num_nodes, 20),
                                                 rng.integers(0, num_nodes, 20)]),
                            y=0)]
        return Batch.from_graphs(graphs)

    def test_edgeconv_shape(self):
        batch = self._batch()
        layer = EdgeConv(4, 8, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(batch.x), batch.edge_index)
        assert out.shape == (10, 8)

    def test_edgeconv_requires_edges(self):
        with pytest.raises(ValueError):
            EdgeConv(3, 4)(nn.Tensor(np.ones((4, 3))), np.zeros((2, 0), dtype=np.int64))

    def test_gcn_handles_isolated_nodes_via_self_loops(self):
        layer = GCNConv(3, 5, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(np.ones((4, 3))), np.zeros((2, 0), dtype=np.int64))
        assert out.shape == (4, 5)
        assert np.abs(out.data).sum() > 0

    def test_gin_shape_and_gradients(self):
        batch = self._batch()
        layer = GINConv(4, 6, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(batch.x), batch.edge_index)
        assert out.shape == (10, 6)
        out.sum().backward()
        assert layer.eps.grad is not None

    def test_dgcnn_forward(self):
        rng = np.random.default_rng(0)
        graphs = [GraphData(x=rng.standard_normal((16, 3)),
                            pos=None, y=i % 3) for i in range(2)]
        batch = Batch.from_graphs(graphs)
        model = DGCNN(in_dim=3, num_classes=3, channels=(8, 8), emb_dim=16, k=4,
                      rng=rng)
        logits = model(batch)
        assert logits.shape == (2, 3)

    def test_gin_classifier_forward(self):
        rng = np.random.default_rng(0)
        graphs = [GraphData(x=rng.standard_normal((6, 5)),
                            edge_index=np.array([[0, 1, 2], [1, 2, 3]]), y=i % 2)
                  for i in range(3)]
        batch = Batch.from_graphs(graphs)
        model = GINClassifier(in_dim=5, num_classes=2, hidden_dims=(8,), rng=rng)
        assert model(batch).shape == (3, 2)


class TestReferenceOpSpecs:
    def test_dgcnn_opspecs_structure(self):
        specs = dgcnn_opspecs()
        assert specs[0].op == OpType.SAMPLE
        assert specs[-1].op == OpType.GLOBAL_POOL
        assert sum(1 for s in specs if s.op == OpType.SAMPLE) == 4
        assert sum(1 for s in specs if s.op == OpType.COMBINE) == 5

    def test_li_optimized_has_single_sample(self):
        specs = li_optimized_opspecs()
        assert sum(1 for s in specs if s.op == OpType.SAMPLE) == 1

    def test_text_and_pnas_specs_have_no_sample(self):
        for specs in (text_gnn_opspecs(), pnas_opspecs()):
            assert all(s.op != OpType.SAMPLE for s in specs)
            assert specs[-1].op == OpType.GLOBAL_POOL
