"""Tests for functional ops: softmax, dropout, one-hot and scatter reductions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((5, 7))
        out = nn.softmax(Tensor(logits)).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5), atol=1e-12)
        assert (out >= 0).all()

    def test_softmax_is_shift_invariant(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        a = nn.softmax(Tensor(logits)).data
        b = nn.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((4, 6))
        direct = nn.log_softmax(Tensor(logits)).data
        via_softmax = np.log(nn.softmax(Tensor(logits)).data)
        np.testing.assert_allclose(direct, via_softmax, atol=1e-10)

    def test_softmax_handles_extreme_logits(self):
        logits = np.array([[1000.0, -1000.0, 0.0]])
        out = nn.softmax(Tensor(logits)).data
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = nn.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_training_mode_zeroes_and_rescales(self):
        rng = np.random.default_rng(2)
        x = Tensor(np.ones((200, 50)))
        out = nn.dropout(x, 0.4, training=True, rng=rng).data
        zero_fraction = (out == 0).mean()
        assert 0.3 < zero_fraction < 0.5
        surviving = out[out != 0]
        np.testing.assert_allclose(surviving, 1.0 / 0.6, atol=1e-12)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            nn.dropout(Tensor(np.ones(3)), 1.5, training=True)

    def test_zero_probability_is_identity(self):
        x = Tensor(np.arange(5.0))
        np.testing.assert_allclose(nn.dropout(x, 0.0, training=True).data, x.data)


class TestOneHot:
    def test_one_hot_encoding(self):
        out = nn.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            nn.one_hot(np.array([3]), 3)


class TestScatter:
    def test_scatter_add_matches_manual(self):
        src = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        out = nn.scatter_add(src, np.array([0, 1, 0]), 2).data
        np.testing.assert_allclose(out, [[6.0, 8.0], [3.0, 4.0]])

    def test_scatter_mean_ignores_empty_segments(self):
        src = Tensor(np.array([[2.0], [4.0]]))
        out = nn.scatter_mean(src, np.array([0, 0]), 3).data
        np.testing.assert_allclose(out, [[3.0], [0.0], [0.0]])

    def test_scatter_sorted_fast_path_matches_unsorted(self):
        """Sorted (reduceat) and unsorted (ufunc.at) paths must agree."""
        rng = np.random.default_rng(0)
        src = rng.normal(size=(40, 3))
        index = np.sort(rng.integers(0, 12, size=40))
        perm = rng.permutation(40)
        for reduce in ("add", "mean", "max"):
            sorted_out = nn.scatter(Tensor(src), index, 12, reduce=reduce).data
            shuffled = nn.scatter(Tensor(src[perm]), index[perm], 12,
                                  reduce=reduce).data
            np.testing.assert_allclose(sorted_out, shuffled, atol=1e-12)

    def test_scatter_out_of_range_sorted_index_still_raises(self):
        """The reduceat fast path must not fold invalid segments silently."""
        src = Tensor(np.ones((4, 2)))
        for fn in (nn.scatter_add, nn.scatter_max):
            with pytest.raises(IndexError):
                fn(src, np.array([0, 1, 2, 3]), 3)

    def test_scatter_max_values_and_empty_segments(self):
        src = Tensor(np.array([[1.0, -5.0], [3.0, 2.0], [2.0, 7.0]]))
        out = nn.scatter_max(src, np.array([1, 1, 1]), 3).data
        np.testing.assert_allclose(out[1], [3.0, 7.0])
        np.testing.assert_allclose(out[0], [0.0, 0.0])
        np.testing.assert_allclose(out[2], [0.0, 0.0])

    def test_scatter_add_gradient(self):
        src = Tensor(np.ones((4, 2)), requires_grad=True)
        nn.scatter_add(src, np.array([0, 1, 1, 0]), 2).sum().backward()
        np.testing.assert_allclose(src.grad, np.ones((4, 2)))

    def test_scatter_mean_gradient_divides_by_count(self):
        src = Tensor(np.ones((4, 1)), requires_grad=True)
        nn.scatter_mean(src, np.array([0, 0, 0, 1]), 2).sum().backward()
        np.testing.assert_allclose(src.grad.reshape(-1), [1 / 3, 1 / 3, 1 / 3, 1.0])

    def test_scatter_max_gradient_goes_to_argmax_only(self):
        src = Tensor(np.array([[1.0], [5.0], [3.0]]), requires_grad=True)
        nn.scatter_max(src, np.array([0, 0, 0]), 1).sum().backward()
        np.testing.assert_allclose(src.grad.reshape(-1), [0.0, 1.0, 0.0])

    def test_index_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.scatter_add(Tensor(np.ones((3, 2))), np.array([0, 1]), 2)

    def test_unknown_reduce_raises(self):
        with pytest.raises(ValueError):
            nn.scatter(Tensor(np.ones((2, 2))), np.array([0, 1]), 2, reduce="median")


class TestGlobalPool:
    def test_mean_pool_per_graph(self):
        x = Tensor(np.array([[1.0], [3.0], [10.0]]))
        batch = np.array([0, 0, 1])
        out = nn.global_pool(x, batch, 2, mode="mean").data
        np.testing.assert_allclose(out, [[2.0], [10.0]])

    def test_max_concat_mean_doubles_width(self):
        x = Tensor(np.arange(8.0).reshape(4, 2))
        batch = np.array([0, 0, 1, 1])
        out = nn.global_pool(x, batch, 2, mode="max||mean")
        assert out.shape == (2, 4)

    def test_sum_pool_matches_scatter_add(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 3))
        batch = np.array([0, 0, 1, 1, 2, 2])
        out = nn.global_pool(Tensor(x), batch, 3, mode="sum").data
        expected = np.stack([x[:2].sum(0), x[2:4].sum(0), x[4:].sum(0)])
        np.testing.assert_allclose(out, expected)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            nn.global_pool(Tensor(np.ones((2, 2))), np.array([0, 1]), 2, mode="median")


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=5))
def test_scatter_add_conserves_mass_property(num_rows, num_segments):
    """Property: scatter_add preserves the column sums of its input."""
    rng = np.random.default_rng(num_rows * 7 + num_segments)
    src = rng.standard_normal((num_rows, 3))
    index = rng.integers(0, num_segments, size=num_rows)
    out = nn.scatter_add(Tensor(src), index, num_segments).data
    np.testing.assert_allclose(out.sum(axis=0), src.sum(axis=0), atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=15))
def test_scatter_max_upper_bounds_mean_property(num_rows):
    """Property: per-segment max is >= per-segment mean for every feature."""
    rng = np.random.default_rng(num_rows)
    src = rng.standard_normal((num_rows, 4))
    index = rng.integers(0, 3, size=num_rows)
    maxed = nn.scatter_max(Tensor(src), index, 3).data
    meaned = nn.scatter_mean(Tensor(src), index, 3).data
    populated = np.isin(np.arange(3), index)
    assert (maxed[populated] + 1e-9 >= meaned[populated]).all()
