"""Tests for the architecture executor, stand-alone training and the supernet."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (Architecture, ArchitectureModel, AccuracyCache, SuperNet,
                        TrainingConfig, evaluate_model, split_callables,
                        train_architecture)
from repro.core.design_space import DesignSpace
from repro.gnn import OpSpec, OpType
from repro.graph.data import Batch


SAMPLE = OpSpec(OpType.SAMPLE, "knn", k=4)
AGG = OpSpec(OpType.AGGREGATE, "max")
POOL = OpSpec(OpType.GLOBAL_POOL, "mean")
COMM = OpSpec(OpType.COMMUNICATE, "uplink")


def simple_arch(width=16):
    return Architecture(ops=(SAMPLE, AGG, OpSpec(OpType.COMBINE, width), POOL))


class TestArchitectureModel:
    def test_forward_shape(self, tiny_modelnet, modelnet_profile):
        model = ArchitectureModel(simple_arch(), modelnet_profile.feature_dim,
                                  modelnet_profile.num_classes, seed=0)
        batch = Batch.from_graphs(tiny_modelnet.train[:4])
        logits = model(batch)
        assert logits.shape == (4, modelnet_profile.num_classes)

    def test_communicate_does_not_change_output(self, tiny_modelnet, modelnet_profile):
        plain = simple_arch()
        with_comm = Architecture(ops=(SAMPLE, AGG, COMM,
                                      OpSpec(OpType.COMBINE, 16), POOL))
        batch = Batch.from_graphs(tiny_modelnet.train[:2])
        a = ArchitectureModel(plain, 3, modelnet_profile.num_classes, seed=3)
        b = ArchitectureModel(with_comm, 3, modelnet_profile.num_classes, seed=3)
        np.testing.assert_allclose(a(batch).data, b(batch).data, atol=1e-9)

    def test_first_communicate_index(self, modelnet_profile):
        arch = Architecture(ops=(SAMPLE, COMM, AGG, OpSpec(OpType.COMBINE, 16), POOL))
        model = ArchitectureModel(arch, 3, 5, seed=0)
        assert model.first_communicate_index() == 1
        assert ArchitectureModel(simple_arch(), 3, 5).first_communicate_index() is None

    def test_split_callables_match_full_forward(self, tiny_modelnet, modelnet_profile):
        arch = Architecture(ops=(SAMPLE, AGG, COMM, OpSpec(OpType.COMBINE, 16), POOL))
        model = ArchitectureModel(arch, 3, modelnet_profile.num_classes, seed=1)
        device_fn, edge_fn = split_callables(model)
        batch = Batch.from_graphs(tiny_modelnet.test[:2])
        arrays, meta = device_fn(batch)
        logits, _ = edge_fn(arrays, meta)
        np.testing.assert_allclose(logits["logits"], model(batch).data, atol=1e-9)

    def test_split_callables_device_only_architecture(self, tiny_modelnet,
                                                      modelnet_profile):
        model = ArchitectureModel(simple_arch(), 3, modelnet_profile.num_classes,
                                  seed=2)
        device_fn, edge_fn = split_callables(model)
        batch = Batch.from_graphs(tiny_modelnet.test[:1])
        arrays, meta = device_fn(batch)
        assert meta["finished"] is True
        logits, _ = edge_fn(arrays, meta)
        np.testing.assert_allclose(logits["logits"], model(batch).data)

    def test_gradients_flow_through_whole_model(self, tiny_modelnet, modelnet_profile):
        from repro import nn
        model = ArchitectureModel(simple_arch(), 3, modelnet_profile.num_classes,
                                  seed=0)
        batch = Batch.from_graphs(tiny_modelnet.train[:4])
        loss = nn.cross_entropy(model(batch), batch.y)
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).sum() > 0 for g in grads)


class TestTraining:
    def test_training_can_fit_training_set(self, tiny_modelnet, modelnet_profile):
        """The training loop must be able to (over)fit a small training set."""
        config = TrainingConfig(epochs=20, batch_size=8, lr=1e-2, seed=0)
        model, result = train_architecture(simple_arch(32), tiny_modelnet.train,
                                           tiny_modelnet.train,
                                           modelnet_profile.feature_dim,
                                           modelnet_profile.num_classes, config)
        chance = 1.0 / modelnet_profile.num_classes
        assert result.val_accuracy > chance + 0.1
        assert result.train_losses[-1] < result.train_losses[0]

    def test_evaluate_model_bounds(self, tiny_modelnet, modelnet_profile):
        model = ArchitectureModel(simple_arch(), 3, modelnet_profile.num_classes)
        overall, balanced = evaluate_model(model, tiny_modelnet.val)
        assert 0.0 <= overall <= 1.0 and 0.0 <= balanced <= 1.0


class TestSuperNet:
    @pytest.fixture
    def supernet(self, modelnet_space, modelnet_profile):
        return SuperNet(modelnet_space, modelnet_profile.feature_dim,
                        modelnet_profile.num_classes, hidden_dim=32, seed=0)

    def test_forward_any_valid_architecture(self, supernet, modelnet_space,
                                            tiny_modelnet):
        rng = np.random.default_rng(0)
        batch = Batch.from_graphs(tiny_modelnet.train[:4])
        for _ in range(10):
            arch = modelnet_space.sample_valid(rng)
            logits = supernet.forward_architecture(arch, batch)
            assert logits.shape == (4, supernet.num_classes)
            assert np.isfinite(logits.data).all()

    def test_pretraining_reduces_loss(self, supernet, tiny_modelnet):
        losses = supernet.pretrain(tiny_modelnet.train, epochs=3, batch_size=8,
                                   lr=5e-3)
        assert len(losses) == 3
        assert losses[-1] <= losses[0]

    def test_evaluate_returns_bounded_accuracies(self, supernet, modelnet_space,
                                                 tiny_modelnet):
        arch = modelnet_space.sample_valid(np.random.default_rng(1))
        overall, balanced = supernet.evaluate(arch, tiny_modelnet.val)
        assert 0.0 <= overall <= 1.0 and 0.0 <= balanced <= 1.0

    def test_accuracy_cache_memoizes(self, supernet, modelnet_space, tiny_modelnet):
        cache = AccuracyCache(supernet, tiny_modelnet.val)
        arch = modelnet_space.sample_valid(np.random.default_rng(2))
        first = cache(arch)
        second = cache(arch)
        assert first == second and len(cache) == 1

    def test_weight_sharing_trains_shared_parameters(self, supernet, modelnet_space,
                                                     tiny_modelnet):
        """Pre-training must actually move the shared weights."""
        before = {name: param.data.copy()
                  for name, param in supernet.named_parameters()}
        supernet.pretrain(tiny_modelnet.train, epochs=1, batch_size=8, lr=1e-2)
        moved = sum(not np.allclose(before[name], param.data)
                    for name, param in supernet.named_parameters())
        assert moved > 0
