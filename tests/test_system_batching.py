"""Tests for cross-client dynamic micro-batching on the edge server.

Covers the batched edge path end to end: state collation / result splitting
(:mod:`repro.core.executor`), numerical equivalence of batched and per-frame
execution across every aggregator and pooling function, and the serving-side
:class:`~repro.system.engine.MicroBatcher` (per-entry coalescing, the
``max_wait_ms`` deadline flush, partial-batch error isolation, and the
realized batch statistics).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import (Architecture, ArchitectureModel, ArchitectureZoo,
                        ZooEntry, batched_edge_fn, collate_arrays,
                        split_callables, split_results)
from repro.serving import build_zoo_callables
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.system import DeviceClient, EdgeServer
from repro.system.messages import Message, deserialize_message, serialize_message

from conftest import wait_until


def _co_inference_arch(aggregate: str = "max", pool: str = "max||mean",
                       sample: str = "knn") -> Architecture:
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, sample, k=4),
        OpSpec(OpType.AGGREGATE, "add"),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, sample, k=4),
        OpSpec(OpType.AGGREGATE, aggregate),
        OpSpec(OpType.COMBINE, 32),
        OpSpec(OpType.GLOBAL_POOL, pool),
    ))


def _frames(num_frames: int, num_points: int = 24,
            graphs_per_frame: int = 1) -> list:
    graphs = SyntheticModelNet40(num_points=num_points, samples_per_class=4,
                                 num_classes=5, seed=3).generate()
    assert len(graphs) >= num_frames * graphs_per_frame
    return [Batch.from_graphs(graphs[i * graphs_per_frame:
                                     (i + 1) * graphs_per_frame])
            for i in range(num_frames)]


class TestCollateSplit:
    def test_collate_offsets_batch_and_edge_index(self):
        requests = [
            ({"x": np.ones((3, 2)), "batch": np.zeros(3, dtype=np.int64),
              "edge_index": np.array([[0, 1], [1, 2]])},
             {"num_graphs": 1, "pooled": False}),
            ({"x": np.full((2, 2), 2.0), "batch": np.zeros(2, dtype=np.int64),
              "edge_index": np.array([[0], [1]])},
             {"num_graphs": 1, "pooled": False}),
        ]
        arrays, meta, graph_counts = collate_arrays(requests)
        assert graph_counts == [1, 1]
        assert meta == {"num_graphs": 2, "pooled": False}
        assert arrays["x"].shape == (5, 2)
        np.testing.assert_array_equal(arrays["batch"], [0, 0, 0, 1, 1])
        # The second frame's edges point at its own (shifted) nodes.
        np.testing.assert_array_equal(arrays["edge_index"],
                                      [[0, 1, 3], [1, 2, 4]])

    def test_collate_respects_multi_graph_frames(self):
        requests = [
            ({"x": np.ones((4, 2)), "batch": np.array([0, 0, 1, 1])},
             {"num_graphs": 2, "pooled": False}),
            ({"x": np.ones((2, 2)), "batch": np.array([0, 1])},
             {"num_graphs": 2, "pooled": False}),
        ]
        arrays, meta, graph_counts = collate_arrays(requests)
        assert graph_counts == [2, 2]
        assert meta["num_graphs"] == 4
        np.testing.assert_array_equal(arrays["batch"], [0, 0, 1, 1, 2, 3])

    def test_collate_rejects_pooled_unpooled_mix(self):
        requests = [
            ({"x": np.ones((2, 2)), "batch": np.array([0, 1])},
             {"num_graphs": 2, "pooled": True}),
            ({"x": np.ones((2, 2)), "batch": np.array([0, 0])},
             {"num_graphs": 1, "pooled": False}),
        ]
        with pytest.raises(ValueError, match="pooled"):
            collate_arrays(requests)

    def test_collate_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            collate_arrays([])

    def test_split_results_inverts_collation(self):
        logits = np.arange(12.0).reshape(6, 2)
        results = split_results({"logits": logits}, {"num_graphs": 6}, [1, 2, 3])
        assert [meta["num_graphs"] for _, meta in results] == [1, 2, 3]
        np.testing.assert_array_equal(results[0][0]["logits"], logits[:1])
        np.testing.assert_array_equal(results[1][0]["logits"], logits[1:3])
        np.testing.assert_array_equal(results[2][0]["logits"], logits[3:])

    def test_split_results_rejects_row_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            split_results({"logits": np.ones((4, 2))}, {"num_graphs": 4}, [1, 2])


class TestBatchedEquivalence:
    """Batched execution must match per-frame execution numerically."""

    @pytest.mark.parametrize("aggregate", ["add", "mean", "max"])
    def test_equivalent_across_aggregators(self, aggregate):
        self._assert_equivalent(_co_inference_arch(aggregate=aggregate))

    @pytest.mark.parametrize("pool", ["sum", "mean", "max", "max||mean"])
    def test_equivalent_across_pool_functions(self, pool):
        self._assert_equivalent(_co_inference_arch(pool=pool))

    def test_equivalent_for_multi_graph_frames(self):
        self._assert_equivalent(_co_inference_arch(), graphs_per_frame=2)

    def test_device_only_architecture_is_echoed_per_frame(self):
        arch = Architecture(ops=(
            OpSpec(OpType.SAMPLE, "knn", k=4),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.COMBINE, 16),
            OpSpec(OpType.GLOBAL_POOL, "mean"),
        ))
        model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        device_fn, _ = split_callables(model)
        batch_fn = batched_edge_fn(model)
        states = [device_fn(frame) for frame in _frames(3)]
        results = batch_fn(states)
        for (arrays, meta), (out_arrays, out_meta) in zip(states, results):
            assert meta["finished"]
            np.testing.assert_array_equal(out_arrays["logits"], arrays["x"])
            assert out_meta["num_graphs"] == meta["num_graphs"]

    @staticmethod
    def _assert_equivalent(arch: Architecture, graphs_per_frame: int = 1,
                           num_frames: int = 5) -> None:
        model = ArchitectureModel(arch, in_dim=3, num_classes=5, seed=0)
        device_fn, edge_fn = split_callables(model)
        batch_fn = batched_edge_fn(model)
        states = [device_fn(frame)
                  for frame in _frames(num_frames,
                                       graphs_per_frame=graphs_per_frame)]
        sequential = [edge_fn(dict(arrays), dict(meta))
                      for arrays, meta in states]
        batched = batch_fn(states)
        assert len(batched) == len(sequential)
        for (seq_arrays, seq_meta), (bat_arrays, bat_meta) in zip(sequential,
                                                                  batched):
            assert seq_meta["num_graphs"] == bat_meta["num_graphs"]
            # Equivalent up to one BLAS ulp: a 1-row frame goes through a
            # different matmul kernel (gemv) than its row inside a batch.
            np.testing.assert_allclose(bat_arrays["logits"],
                                       seq_arrays["logits"],
                                       rtol=1e-12, atol=1e-12)


def _device_fn(frame):
    return {"x": np.asarray(frame, dtype=np.float64)}, {"scale": 2.0}


def _edge_fn(arrays, meta):
    return {"y": arrays["x"] * meta["scale"]}, {}


def _batch_edge_fn(requests):
    return [_edge_fn(arrays, meta) for arrays, meta in requests]


class TestMicroBatchingServing:
    def test_coalesces_concurrent_clients_and_reports_stats(self):
        sizes = []
        release = threading.Event()

        def gated_batch_fn(requests):
            sizes.append(len(requests))
            if len(sizes) == 1:
                # Hold the first dispatch so the remaining traffic piles up
                # in the entry queue and must coalesce into larger batches.
                release.wait(timeout=10.0)
            return _batch_edge_fn(requests)

        num_clients, frames_per_client = 4, 6
        server = EdgeServer(_edge_fn, batch_fns={"default": gated_batch_fn},
                            max_batch_size=8, max_wait_ms=20.0,
                            max_workers=num_clients).start()
        outputs = {}
        errors = []

        def run_client(index):
            client = DeviceClient(server.host, server.port)
            try:
                frames = [np.full((3, 3), index * 100 + i, dtype=float)
                          for i in range(frames_per_client)]
                results, _ = client.run_pipeline(frames, _device_fn,
                                                 timeout_s=30.0)
                outputs[index] = (frames, results)
            except Exception as exc:
                errors.append((index, exc))
            finally:
                client.close()

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(num_clients)]
        for thread in threads:
            thread.start()
        # Release the gate only once the first dispatch is underway AND at
        # least two further frames verifiably sit in the entry queue, so the
        # next dispatch deterministically sees a multi-frame batch (a fixed
        # sleep here was flaky when client startup was slow).
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            with server._batcher._lock:
                entry_queue = server._batcher._queues.get("default")
            if sizes and entry_queue is not None and entry_queue.qsize() >= 2:
                break
            time.sleep(0.01)
        release.set()
        for thread in threads:
            thread.join(timeout=30.0)
        stats = server.stats()
        server.stop()
        assert not errors, f"client failures: {errors}"
        # Every client got exactly its own frames back, scaled.
        for index, (frames, results) in outputs.items():
            assert len(results) == frames_per_client
            for frame, result in zip(frames, results):
                np.testing.assert_array_equal(result.arrays["y"], frame * 2.0)
                assert result.batch_index is not None  # served via the batcher
        total = num_clients * frames_per_client
        assert sum(sizes) == total
        assert max(sizes) > 1, f"no coalescing happened: {sizes}"
        assert stats.frames_processed == total
        assert stats.batches_dispatched == len(sizes)
        assert stats.mean_batch_size == pytest.approx(total / len(sizes))
        assert sum(size * count for size, count
                   in stats.batch_size_histogram.items()) == total
        assert stats.mean_queue_delay_s >= 0.0
        assert stats.batch_fallback_frames == 0  # every batched call succeeded

    def test_single_frame_flushed_by_deadline(self):
        """A lone frame must be released after max_wait_ms, not held forever."""
        server = EdgeServer(_edge_fn, batch_fns={"default": _batch_edge_fn},
                            max_batch_size=8, max_wait_ms=40.0).start()
        client = DeviceClient(server.host, server.port)
        try:
            started = time.perf_counter()
            results, _ = client.run_pipeline([np.ones((2, 2))], _device_fn,
                                             timeout_s=10.0)
            elapsed = time.perf_counter() - started
            np.testing.assert_array_equal(results[0].arrays["y"],
                                          np.ones((2, 2)) * 2.0)
            # Well under the pipeline timeout: the deadline flush fired.
            assert elapsed < 5.0
        finally:
            client.close()
            server.stop()
        stats = server.stats()
        assert stats.batch_size_histogram == {1: 1}
        assert stats.batches_dispatched == 1

    def test_mixed_entry_queues_never_cross_batch(self):
        seen = {"a": [], "b": []}

        def make_batch_fn(name):
            def batch_fn(requests):
                seen[name].append([meta["tag"] for _, meta in requests])
                return [({"y": arrays["x"]}, {}) for arrays, _ in requests]
            return batch_fn

        def tagged_device_fn(tag):
            def device_fn(frame):
                return {"x": np.asarray(frame, dtype=np.float64)}, {"tag": tag}
            return device_fn

        echo = lambda arrays, meta: ({"y": arrays["x"]}, {})
        server = EdgeServer(edge_fns={"a": echo, "b": echo},
                            batch_fns={"a": make_batch_fn("a"),
                                       "b": make_batch_fn("b")},
                            max_batch_size=8, max_wait_ms=50.0).start()
        errors = []

        def run_client(model):
            client = DeviceClient(server.host, server.port, model=model)
            try:
                client.run_pipeline([np.ones((2, 2))] * 4,
                                    tagged_device_fn(model), timeout_s=30.0)
            except Exception as exc:
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=run_client, args=(model,))
                   for model in ("a", "b", "a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        server.stop()
        assert not errors
        # Per-entry queues: every batch is pure, whatever the coalescing was.
        assert sum(len(batch) for batch in seen["a"]) == 8
        assert sum(len(batch) for batch in seen["b"]) == 8
        for name in ("a", "b"):
            for batch in seen[name]:
                assert set(batch) == {name}

    def test_partial_batch_error_isolates_to_offending_frame(self):
        def flaky_edge_fn(arrays, meta):
            if meta.get("explode"):
                raise ValueError("synthetic batched failure")
            return _edge_fn(arrays, meta)

        def flaky_batch_fn(requests):
            # A batch containing the poisoned frame fails as a whole; the
            # server must fall back to per-frame execution and only fail the
            # offending frame.
            return [flaky_edge_fn(arrays, meta) for arrays, meta in requests]

        server = EdgeServer(flaky_edge_fn,
                            batch_fns={"default": flaky_batch_fn},
                            max_batch_size=8, max_wait_ms=100.0).start()
        good_results = {}
        bad_failure = []

        def good_client():
            client = DeviceClient(server.host, server.port)
            try:
                frames = [np.full((2, 2), v, dtype=float) for v in (1.0, 2.0)]
                results, _ = client.run_pipeline(frames, _device_fn,
                                                 timeout_s=30.0)
                good_results["frames"] = (frames, results)
            finally:
                client.close()

        def bad_client():
            client = DeviceClient(server.host, server.port)

            def exploding_device_fn(frame):
                arrays, meta = _device_fn(frame)
                meta["explode"] = True
                return arrays, meta

            try:
                with pytest.raises(RuntimeError) as excinfo:
                    client.run_pipeline([np.ones((2, 2))], exploding_device_fn,
                                        timeout_s=30.0)
                bad_failure.append(str(excinfo.value))
            finally:
                client.close()

        threads = [threading.Thread(target=good_client),
                   threading.Thread(target=bad_client)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        server.stop()
        # The good client's frames all succeeded despite sharing batches
        # with the poisoned frame.
        frames, results = good_results["frames"]
        assert len(results) == 2
        for frame, result in zip(frames, results):
            np.testing.assert_array_equal(result.arrays["y"], frame * 2.0)
        assert bad_failure and "synthetic batched failure" in bad_failure[0]
        stats = server.stats()
        assert stats.errors == 1
        assert stats.frames_processed == 2
        # The failed batched call is visible as per-frame fallback frames
        # whenever the poisoned frame actually coalesced with company.
        if any(size > 1 for size in stats.batch_size_histogram):
            assert stats.batch_fallback_frames >= 1

    def test_malformed_batch_results_fall_back_per_frame(self):
        """Right-length but malformed results must not strand the batch tail."""
        def malformed_batch_fn(requests):
            # Correct length, but elements are not (arrays, meta) pairs.
            return [None for _ in requests]

        server = EdgeServer(_edge_fn,
                            batch_fns={"default": malformed_batch_fn},
                            max_batch_size=8, max_wait_ms=100.0).start()
        outputs = {}
        errors = []

        def run_client(index):
            client = DeviceClient(server.host, server.port)
            try:
                frames = [np.full((2, 2), index + 1, dtype=float)] * 2
                results, _ = client.run_pipeline(frames, _device_fn,
                                                 timeout_s=15.0)
                outputs[index] = (frames, results)
            except Exception as exc:
                errors.append((index, exc))
            finally:
                client.close()

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        server.stop()
        # Every frame was answered via the per-frame fallback — nobody
        # timed out waiting for a reply that never came.
        assert not errors, f"client failures: {errors}"
        for frames, results in outputs.values():
            for frame, result in zip(frames, results):
                np.testing.assert_array_equal(result.arrays["y"], frame * 2.0)
        stats = server.stats()
        assert stats.frames_processed == 4
        if any(size > 1 for size in stats.batch_size_histogram):
            assert stats.batch_fallback_frames >= 2

    def test_batched_serving_matches_local_forward(self):
        """Logits served through the micro-batcher equal a local forward."""
        def arch(name):
            return Architecture(ops=(
                OpSpec(OpType.SAMPLE, "knn", k=4),
                OpSpec(OpType.AGGREGATE, "max"),
                OpSpec(OpType.COMMUNICATE, "uplink"),
                OpSpec(OpType.COMBINE, 16),
                OpSpec(OpType.GLOBAL_POOL, "max||mean"),
            ), name=name)

        zoo = ArchitectureZoo([ZooEntry("served", arch("served"),
                                        0.9, 50.0, 0.5)])
        serving = build_zoo_callables(zoo, in_dim=3, num_classes=5, seed=0)
        server = EdgeServer(
            edge_fns={"served": serving["served"].edge_fn},
            batch_fns={"served": serving["served"].batch_fn},
            max_batch_size=4, max_wait_ms=30.0).start()
        frames = _frames(4)
        reference = ArchitectureModel(arch("served"), in_dim=3, num_classes=5,
                                      seed=0)
        expected = [reference(frame).data for frame in frames]
        outputs = {}
        errors = []

        def run_client(index):
            client = DeviceClient(server.host, server.port, model="served")
            try:
                results, _ = client.run_pipeline(
                    frames, serving["served"].device_fn, timeout_s=30.0)
                outputs[index] = results
            except Exception as exc:
                errors.append((index, exc))
            finally:
                client.close()

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        server.stop()
        assert not errors, f"client failures: {errors}"
        for results in outputs.values():
            assert len(results) == len(frames)
            for result, local in zip(results, expected):
                np.testing.assert_allclose(result.arrays["logits"], local,
                                           rtol=1e-12, atol=1e-12)

    def test_rejects_batch_fn_without_edge_fn(self):
        with pytest.raises(ValueError, match="batch_fns"):
            EdgeServer(_edge_fn, batch_fns={"typo": _batch_edge_fn},
                       max_batch_size=4)
        with pytest.raises(ValueError, match="max_batch_size"):
            EdgeServer(_edge_fn, max_batch_size=0)

    def test_entries_without_batch_fn_bypass_the_batcher(self):
        """No batched callable -> direct concurrent per-frame path, no queueing."""
        server = EdgeServer(_edge_fn, max_batch_size=8, max_wait_ms=200.0).start()
        client = DeviceClient(server.host, server.port)
        try:
            results, _ = client.run_pipeline([np.ones((2, 2))] * 3, _device_fn,
                                             timeout_s=10.0)
            # Served directly by the handler thread, not via the batcher.
            assert all(result.batch_index is None for result in results)
        finally:
            client.close()
            server.stop()
        stats = server.stats()
        assert stats.frames_processed == 3
        assert stats.batches_dispatched == 0

    def test_reply_after_session_eviction_books_into_aggregate(self):
        """Late batcher replies must not mutate an already-evicted session."""
        import socket as _socket

        from repro.system.engine import ServingSession, _PendingRequest
        from repro.system.messages import Message as _Message

        server = EdgeServer(_edge_fn, batch_fns={"default": _batch_edge_fn},
                            max_batch_size=2)
        left, right = _socket.socketpair()
        try:
            session = ServingSession(session_id=99, peer="test")
            session.evicted = True  # folded into the aggregate already
            request = _PendingRequest(
                conn=left, send_lock=threading.Lock(), session=session,
                message=_Message(kind="frame", frame_id=0,
                                 arrays={"x": np.ones((1, 1))}, meta={}),
                enqueued_at=0.0)
            server._reply_result(request, "default", {"y": np.ones((1, 1))},
                                 {}, 0.01)
            # The evicted session object stays untouched; the frame lands in
            # the retained aggregate and is visible in the totals.
            assert session.frames == 0
            assert server._retired.frames == 1
            assert server.frames_processed == 1
        finally:
            left.close()
            right.close()
            server.stop()

    def test_batching_off_by_default_serves_without_batch_index(self):
        server = EdgeServer(_edge_fn).start()
        client = DeviceClient(server.host, server.port)
        try:
            results, _ = client.run_pipeline([np.ones((2, 2))], _device_fn,
                                             timeout_s=10.0)
            assert results[0].batch_index is None
        finally:
            client.close()
            server.stop()
        stats = server.stats()
        assert stats.batches_dispatched == 0
        assert stats.batch_size_histogram == {}


class TestBatchIndexWireFormat:
    def test_batch_index_roundtrips(self):
        message = Message(kind="result", frame_id=3,
                          arrays={"y": np.ones((2, 2))}, meta={"ok": True},
                          batch_index=5)
        decoded = deserialize_message(serialize_message(message))
        assert decoded.batch_index == 5
        assert decoded.frame_id == 3

    def test_batch_index_defaults_to_none(self):
        decoded = deserialize_message(serialize_message(Message(kind="frame")))
        assert decoded.batch_index is None


class TestQueueDepthStats:
    """Queue health: EdgeServerStats.queue_depth / queue_depth_peak."""

    def test_depth_visible_under_gated_dispatch_and_drains_to_zero(self):
        release = threading.Event()
        dispatched = threading.Event()

        def gated_batch_fn(requests):
            dispatched.set()
            # Must outlive the queue-depth wait below, or the gate expires
            # mid-test, the queue drains, and the depth assertion races.
            release.wait(timeout=60.0)
            return _batch_edge_fn(requests)

        server = EdgeServer(_edge_fn, batch_fns={"default": gated_batch_fn},
                            max_batch_size=1024, max_wait_ms=0.0,
                            max_workers=4).start()
        clients = [DeviceClient(server.host, server.port) for _ in range(2)]
        errors = []

        def run_client(client, value):
            try:
                frames = [np.full((2, 2), value + i, dtype=float)
                          for i in range(4)]
                client.run_pipeline(frames, _device_fn, timeout_s=30.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=run_client, args=(c, i * 10))
                   for i, c in enumerate(clients)]
        try:
            threads[0].start()
            assert dispatched.wait(timeout=10.0)
            # First dispatch is gated; everything client 2 sends now piles
            # up in the entry queue and must show up as queue depth.
            threads[1].start()
            wait_until(lambda: server.stats().queue_depth >= 1,
                       message="frames queued behind the gated dispatch")
            stalled = server.stats()
            assert stalled.queue_depth >= 1
            assert stalled.queue_depth_peak >= stalled.queue_depth
            release.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors, errors
            drained = server.stats()
            assert drained.queue_depth == 0  # everything dispatched
            assert drained.queue_depth_peak >= stalled.queue_depth_peak
        finally:
            release.set()
            for client in clients:
                client.close()
            server.stop()

    def test_zero_without_batching(self):
        server = EdgeServer(_edge_fn).start()
        client = DeviceClient(server.host, server.port)
        try:
            client.run_pipeline([np.ones((2, 2))], _device_fn, timeout_s=10.0)
            stats = server.stats()
            assert stats.queue_depth == 0
            assert stats.queue_depth_peak == 0
        finally:
            client.close()
            server.stop()
