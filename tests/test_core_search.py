"""Tests for the constraint-based random search, the EA baseline, zoo and dispatcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (Architecture, ArchitectureZoo, ConstraintRandomSearch,
                        CostEstimator, CostEstimatorEvaluator, EvolutionarySearch,
                        EvolutionarySearchConfig, RandomSearchConfig,
                        RuntimeConditions, RuntimeDispatcher, SearchConstraints,
                        SimulatorEvaluator, ZooEntry, FAILED_SCORE)
from repro.core.design_space import DesignSpace
from repro.core.search.common import ScoredArchitecture
from repro.gnn import OpSpec, OpType
from repro.hardware import DataProfile, JETSON_TX2, INTEL_I7, LINK_40MBPS
from repro.system import CoInferenceSimulator, SystemConfig


@pytest.fixture
def profile():
    return DataProfile.modelnet40(num_points=128, num_classes=10)


@pytest.fixture
def space(profile):
    return DesignSpace(num_layers=5, profile=profile, combine_widths=(16, 32, 64),
                       k_choices=(4, 8))


@pytest.fixture
def simulator():
    return CoInferenceSimulator(SystemConfig(JETSON_TX2, INTEL_I7, LINK_40MBPS))


@pytest.fixture
def efficiency(simulator, profile):
    return SimulatorEvaluator(simulator, profile)


def proxy_accuracy(arch: Architecture):
    """Cheap deterministic accuracy proxy: richer compute scores higher.

    Using a proxy keeps the search tests fast while preserving the trade-off
    structure the search must navigate (accuracy favours wide Combine and
    Aggregate operations, efficiency punishes them).
    """
    score = 0.55
    for op in arch.ops:
        if op.op == OpType.AGGREGATE:
            score += 0.05
        if op.op == OpType.COMBINE:
            score += 0.04 * (int(op.function) / 64.0)
    return min(score, 0.95), min(score, 0.95) - 0.01


class TestEfficiencyEvaluators:
    def test_simulator_evaluator_caches(self, efficiency, space):
        arch = space.sample_valid(np.random.default_rng(0))
        first = efficiency.evaluate(arch)
        second = efficiency.evaluate(arch)
        assert first is second
        assert first.latency_ms > 0 and first.device_energy_j > 0

    def test_cost_evaluator_wraps_estimator(self, simulator, space, profile):
        estimator = CostEstimator.for_system(JETSON_TX2, INTEL_I7, LINK_40MBPS,
                                             profile)
        evaluator = CostEstimatorEvaluator(estimator, simulator, profile)
        arch = space.sample_valid(np.random.default_rng(1))
        estimate = evaluator.evaluate(arch)
        assert estimate.latency_ms == pytest.approx(
            estimator.estimate_latency_ms(arch))


class TestConstraints:
    def test_satisfied_by(self):
        from repro.core.performance import EfficiencyEstimate
        constraints = SearchConstraints(latency_ms=100.0, energy_j=1.0)
        assert constraints.satisfied_by(EfficiencyEstimate(50.0, 0.5))
        assert not constraints.satisfied_by(EfficiencyEstimate(150.0, 0.5))
        assert not constraints.satisfied_by(EfficiencyEstimate(50.0, 1.5))
        assert SearchConstraints().satisfied_by(EfficiencyEstimate(1e9, 1e9))

    def test_normalized_cost_uses_constraints_as_scale(self):
        from repro.core.performance import EfficiencyEstimate
        constraints = SearchConstraints(latency_ms=100.0, energy_j=2.0)
        cost = constraints.normalized_cost(EfficiencyEstimate(50.0, 1.0), 1.0, 1.0)
        assert cost == pytest.approx(0.5 + 0.5)


class TestRandomSearch:
    def test_search_finds_constraint_satisfying_architectures(self, space,
                                                              efficiency):
        constraints = SearchConstraints(latency_ms=120.0, energy_j=1.5,
                                        tradeoff_lambda=0.1)
        search = ConstraintRandomSearch(space, proxy_accuracy, efficiency,
                                        constraints,
                                        RandomSearchConfig(max_trials=80,
                                                           tuning_trials=4,
                                                           keep_top=5, seed=0))
        result = search.run()
        assert result.best is not None
        assert result.best.latency_ms < 120.0
        assert result.best.device_energy_j < 1.5
        assert len(result.candidates) <= 5
        assert result.num_trials == 80

    def test_history_marks_rejected_trials(self, space, efficiency):
        # A 4 ms latency budget is tight enough that some sampled candidates
        # (those keeping heavy ops on the device) must be rejected.
        constraints = SearchConstraints(latency_ms=4.0, energy_j=0.05)
        search = ConstraintRandomSearch(space, proxy_accuracy, efficiency,
                                        constraints,
                                        RandomSearchConfig(max_trials=40, seed=1))
        result = search.run()
        assert FAILED_SCORE in result.score_history
        assert result.num_constraint_violations > 0

    def test_best_score_curve_is_monotone(self, space, efficiency):
        search = ConstraintRandomSearch(space, proxy_accuracy, efficiency,
                                        SearchConstraints(),
                                        RandomSearchConfig(max_trials=30, seed=2))
        curve = search.run().best_score_curve()
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_larger_lambda_prefers_faster_architectures(self, space, efficiency):
        def run(lam):
            search = ConstraintRandomSearch(
                space, proxy_accuracy, efficiency,
                SearchConstraints(tradeoff_lambda=lam),
                RandomSearchConfig(max_trials=60, tuning_trials=0, seed=3))
            return search.run().best.latency_ms
        assert run(2.0) <= run(0.01)

    def test_scale_down_never_worsens_kept_candidates(self, space, efficiency):
        constraints = SearchConstraints(latency_ms=200.0, energy_j=3.0)
        config = RandomSearchConfig(max_trials=50, tuning_trials=5, keep_top=3,
                                    seed=4)
        no_tuning = ConstraintRandomSearch(
            space, proxy_accuracy, efficiency, constraints,
            RandomSearchConfig(max_trials=50, tuning_trials=0, keep_top=3, seed=4)
        ).run()
        tuned = ConstraintRandomSearch(space, proxy_accuracy, efficiency,
                                       constraints, config).run()
        assert tuned.best.latency_ms <= no_tuning.best.latency_ms + 1e-6

    def test_top_k_objectives(self, space, efficiency):
        search = ConstraintRandomSearch(space, proxy_accuracy, efficiency,
                                        SearchConstraints(),
                                        RandomSearchConfig(max_trials=40, seed=5))
        result = search.run()
        fastest = result.top_k(1, "latency")[0]
        assert fastest.latency_ms == min(c.latency_ms for c in result.candidates)
        with pytest.raises(ValueError):
            result.top_k(1, "beauty")


class TestEvolutionarySearch:
    def test_ea_runs_and_tracks_invalid_candidates(self, space, efficiency):
        config = EvolutionarySearchConfig(max_trials=60, population_size=8, seed=0)
        ea = EvolutionarySearch(space, proxy_accuracy, efficiency,
                                SearchConstraints(), config)
        result = ea.run()
        assert result.num_trials == 60
        assert result.num_invalid > 0  # uniform initial population is mostly invalid

    def test_valid_initial_population_reduces_invalid_rate(self, space, efficiency):
        def invalid_fraction(valid_init):
            config = EvolutionarySearchConfig(max_trials=60, population_size=8,
                                              valid_initial_population=valid_init,
                                              seed=1)
            ea = EvolutionarySearch(space, proxy_accuracy, efficiency,
                                    SearchConstraints(), config)
            result = ea.run()
            return result.num_invalid / result.num_trials
        assert invalid_fraction(True) <= invalid_fraction(False)

    def test_random_search_outperforms_ea_in_this_space(self, space, efficiency):
        """Reproduces the Fig. 10(a) qualitative finding at small scale."""
        constraints = SearchConstraints(tradeoff_lambda=0.1)
        random_best = ConstraintRandomSearch(
            space, proxy_accuracy, efficiency, constraints,
            RandomSearchConfig(max_trials=80, tuning_trials=0, seed=2)).run()
        ea_best = EvolutionarySearch(
            space, proxy_accuracy, efficiency, constraints,
            EvolutionarySearchConfig(max_trials=80, population_size=10, seed=2)).run()
        assert random_best.best.score >= ea_best.best.score - 0.05


class TestZooAndDispatcher:
    def _zoo(self):
        def entry(name, acc, lat, energy):
            arch = Architecture(ops=(OpSpec(OpType.SAMPLE, "knn", k=4),
                                     OpSpec(OpType.AGGREGATE, "max"),
                                     OpSpec(OpType.COMBINE, 32),
                                     OpSpec(OpType.GLOBAL_POOL, "mean")), name=name)
            return ZooEntry(name=name, architecture=arch, accuracy=acc,
                            latency_ms=lat, device_energy_j=energy)
        return ArchitectureZoo([entry("accurate", 0.93, 80.0, 0.8),
                                entry("fast", 0.90, 25.0, 0.3),
                                entry("frugal", 0.88, 40.0, 0.1)])

    def test_best_by_objective(self):
        zoo = self._zoo()
        assert zoo.best("latency").name == "fast"
        assert zoo.best("energy").name == "frugal"
        assert zoo.best("accuracy").name == "accurate"
        with pytest.raises(ValueError):
            zoo.best("throughput")

    def test_filter_by_budgets(self):
        names = {entry.name for entry in self._zoo().filter(latency_ms=50.0)}
        assert names == {"fast", "frugal"}

    def test_save_load_roundtrip(self, tmp_path):
        zoo = self._zoo()
        path = str(tmp_path / "zoo.json")
        zoo.save(path)
        restored = ArchitectureZoo.load(path)
        assert set(restored.names()) == set(zoo.names())
        assert restored.get("fast").latency_ms == pytest.approx(25.0)

    def test_from_search_tags_champions(self):
        candidates = [
            ScoredArchitecture(self._zoo().get("fast").architecture, 0.9, 0.89,
                               25.0, 0.3, 0.8, 0),
            ScoredArchitecture(self._zoo().get("accurate").architecture, 0.93, 0.92,
                               80.0, 0.8, 0.85, 1),
        ]
        zoo = ArchitectureZoo.from_search(candidates)
        assert len(zoo) == 2
        tags = [tag for entry in zoo for tag in entry.tags]
        assert "best-latency" in tags and "best-accuracy" in tags

    def test_dispatcher_prefers_accuracy_within_budget(self):
        dispatcher = RuntimeDispatcher(self._zoo())
        assert dispatcher.select(RuntimeConditions(latency_budget_ms=100.0)).name \
            == "accurate"
        assert dispatcher.select(RuntimeConditions(latency_budget_ms=30.0)).name \
            == "fast"
        assert dispatcher.select(RuntimeConditions(energy_budget_j=0.2)).name \
            == "frugal"

    def test_dispatcher_falls_back_to_fastest(self):
        dispatcher = RuntimeDispatcher(self._zoo())
        assert dispatcher.select(RuntimeConditions(latency_budget_ms=1.0)).name \
            == "fast"

    def test_dispatcher_falls_back_to_most_frugal_on_energy_violation(self):
        """Only the energy budget is unattainable -> lowest-energy entry."""
        dispatcher = RuntimeDispatcher(self._zoo())
        chosen = dispatcher.select(RuntimeConditions(energy_budget_j=0.01))
        assert chosen.name == "frugal"
        # With a latency budget attached, the frugal fallback still respects it.
        chosen = dispatcher.select(RuntimeConditions(latency_budget_ms=30.0,
                                                     energy_budget_j=0.01))
        assert chosen.name == "fast"  # only latency-feasible entry
        # Both budgets unattainable -> fastest entry overall.
        chosen = dispatcher.select(RuntimeConditions(latency_budget_ms=1.0,
                                                     energy_budget_j=0.01))
        assert chosen.name == "fast"

    def test_dispatcher_select_for_meta_and_conditions_roundtrip(self):
        from repro.core import conditions_from_meta
        dispatcher = RuntimeDispatcher(self._zoo())
        conditions = RuntimeConditions(latency_budget_ms=30.0)
        meta = {"conditions": conditions.to_dict()}
        assert conditions_from_meta(meta) == conditions
        assert dispatcher.select_for_meta(meta) == "fast"
        assert dispatcher.select_for_meta({}) == "accurate"  # unconstrained
        assert dispatcher.history == ["fast", "accurate"]

    def test_dispatcher_degrades_with_bandwidth_factor(self):
        zoo = self._zoo()
        # Make the accurate entry a co-inference architecture so the link matters.
        accurate = zoo.get("accurate")
        ops = list(accurate.architecture.ops)
        ops.insert(2, OpSpec(OpType.COMMUNICATE, "uplink"))
        accurate.architecture = Architecture(ops=tuple(ops), name="accurate")
        dispatcher = RuntimeDispatcher(zoo)
        good_link = dispatcher.select(RuntimeConditions(latency_budget_ms=100.0,
                                                        bandwidth_factor=1.0))
        bad_link = dispatcher.select(RuntimeConditions(latency_budget_ms=100.0,
                                                       bandwidth_factor=0.5))
        assert good_link.name == "accurate"
        assert bad_link.name in {"fast", "frugal", "accurate"}
        assert len(dispatcher.history) == 2

    def test_empty_zoo_rejected(self):
        with pytest.raises(ValueError):
            RuntimeDispatcher(ArchitectureZoo())
