"""Integration tests: the full GCoDE pipeline end-to-end on tiny workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (GCoDE, GCoDEConfig, SearchConstraints, TrainingConfig)
from repro.graph.data import Batch
from repro.hardware import (DataProfile, JETSON_TX2, RASPBERRY_PI_4B, INTEL_I7,
                            NVIDIA_1060, LINK_40MBPS, LINK_10MBPS)
from repro.system import run_co_inference


@pytest.fixture(scope="module")
def gcode_session(tiny_modelnet_module, modelnet_profile_module):
    """A prepared GCoDE session shared by the integration tests."""
    gcode = GCoDE(profile=modelnet_profile_module, device=JETSON_TX2, edge=INTEL_I7,
                  link=LINK_40MBPS,
                  config=GCoDEConfig(num_layers=6, supernet_hidden=32,
                                     combine_widths=(16, 32, 64),
                                     k_choices=(4, 8), seed=0))
    gcode.prepare(tiny_modelnet_module.train, tiny_modelnet_module.val,
                  supernet_epochs=2, batch_size=8)
    return gcode


# Module-scoped copies of the session fixtures (conftest ones are session-scoped
# but function-scoped access is fine; we re-declare to keep the GCoDE fixture
# module-scoped without re-generating data).
@pytest.fixture(scope="module")
def tiny_modelnet_module():
    from repro.graph import SyntheticModelNet40, stratified_split
    dataset = SyntheticModelNet40(num_points=32, samples_per_class=6,
                                  num_classes=5, seed=0)
    return stratified_split(dataset.generate(), 0.6, 0.2, seed=0)


@pytest.fixture(scope="module")
def modelnet_profile_module():
    return DataProfile.modelnet40(num_points=32, num_classes=5)


class TestGCoDEPipeline:
    def test_search_produces_constrained_zoo(self, gcode_session):
        result = gcode_session.search(
            SearchConstraints(latency_ms=80.0, energy_j=1.0, tradeoff_lambda=0.2),
            max_trials=60, tuning_trials=3, keep_top=5)
        assert result.best is not None
        assert len(gcode_session.zoo) >= 1
        for entry in gcode_session.zoo:
            assert entry.latency_ms < 80.0
            assert entry.device_energy_j < 1.0

    def test_search_with_cost_and_simulator_evaluators_agree_on_ranking(
            self, gcode_session):
        constraints = SearchConstraints(latency_ms=100.0, energy_j=2.0)
        cost_result = gcode_session.search(constraints, max_trials=40,
                                           tuning_trials=0, evaluator="cost")
        simulator_result = gcode_session.search(constraints, max_trials=40,
                                                tuning_trials=0,
                                                evaluator="simulator")
        assert cost_result.best is not None and simulator_result.best is not None

    def test_predictor_evaluator_requires_training(self, gcode_session):
        with pytest.raises(RuntimeError):
            gcode_session._efficiency_evaluator("predictor")
        gcode_session.build_predictor(num_samples=30, epochs=3, hidden_dim=16)
        evaluator = gcode_session._efficiency_evaluator("predictor")
        arch = gcode_session.zoo.best("latency").architecture
        assert evaluator.evaluate(arch).latency_ms > 0

    def test_deploy_and_dispatch(self, gcode_session, tiny_modelnet_module):
        gcode_session.search(SearchConstraints(latency_ms=100.0, energy_j=2.0),
                             max_trials=40, tuning_trials=2, keep_top=4)
        entry = gcode_session.zoo.best("latency")
        model, training = gcode_session.deploy(
            entry, tiny_modelnet_module.train, tiny_modelnet_module.val,
            training=TrainingConfig(epochs=3, batch_size=8, seed=0))
        assert training.val_accuracy >= 0.0
        dispatcher = gcode_session.dispatcher()
        chosen = dispatcher.select()
        assert chosen.name in gcode_session.zoo.names()

    def test_engine_serves_deployed_model(self, gcode_session, tiny_modelnet_module):
        gcode_session.search(SearchConstraints(latency_ms=100.0, energy_j=2.0),
                             max_trials=30, tuning_trials=0, keep_top=3)
        entry = gcode_session.zoo.best("latency")
        model, _ = gcode_session.deploy(entry, tiny_modelnet_module.train,
                                        tiny_modelnet_module.val,
                                        training=TrainingConfig(epochs=1,
                                                                batch_size=8))
        device_fn, edge_fn = gcode_session.engine_callables(model)
        frames = [Batch.from_graphs([g]) for g in tiny_modelnet_module.test[:3]]
        results, stats = run_co_inference(frames, device_fn, edge_fn)
        assert len(results) == 3 and stats.throughput_fps > 0

    def test_search_requires_prepare(self, modelnet_profile_module):
        fresh = GCoDE(profile=modelnet_profile_module, device=JETSON_TX2,
                      edge=INTEL_I7, link=LINK_40MBPS)
        with pytest.raises(RuntimeError):
            fresh.search(SearchConstraints(), max_trials=5)

    def test_evaluate_architecture_helper(self, gcode_session):
        entry = gcode_session.zoo.best("accuracy")
        perf = gcode_session.evaluate_architecture(entry.architecture)
        assert perf.latency_ms > 0


class TestCrossSystemBehaviour:
    """Directional checks mirroring the paper's qualitative claims."""

    def _search_best_latency(self, device, edge, link, profile, split):
        gcode = GCoDE(profile=profile, device=device, edge=edge, link=link,
                      config=GCoDEConfig(num_layers=6, supernet_hidden=32,
                                         combine_widths=(16, 32),
                                         k_choices=(4,), seed=0))
        gcode.prepare(split.train, split.val, supernet_epochs=1, batch_size=8)
        gcode.search(SearchConstraints(tradeoff_lambda=1.0), max_trials=40,
                     tuning_trials=0, keep_top=3)
        return gcode.zoo.best("latency").latency_ms

    def test_co_design_beats_dgcnn_device_only(self, tiny_modelnet_module,
                                               modelnet_profile_module):
        """GCoDE's searched co-inference design should be much faster than
        running DGCNN entirely on a weak device (the Table 2 headline)."""
        from repro.baselines import dgcnn_architecture
        from repro.system import CoInferenceSimulator, SystemConfig
        best = self._search_best_latency(RASPBERRY_PI_4B, NVIDIA_1060, LINK_40MBPS,
                                         modelnet_profile_module,
                                         tiny_modelnet_module)
        simulator = CoInferenceSimulator(SystemConfig(RASPBERRY_PI_4B, NVIDIA_1060,
                                                      LINK_40MBPS))
        dgcnn = simulator.evaluate_device_only(dgcnn_architecture().ops,
                                               modelnet_profile_module)
        assert dgcnn.latency_ms / best > 2.0

    def test_worse_network_never_improves_best_latency(self, tiny_modelnet_module,
                                                       modelnet_profile_module):
        fast_link = self._search_best_latency(JETSON_TX2, NVIDIA_1060, LINK_40MBPS,
                                              modelnet_profile_module,
                                              tiny_modelnet_module)
        slow_link = self._search_best_latency(JETSON_TX2, NVIDIA_1060, LINK_10MBPS,
                                              modelnet_profile_module,
                                              tiny_modelnet_module)
        assert slow_link >= fast_link - 1.0
