"""Retry/backoff resilience policy of the device client.

These tests pin the :class:`repro.serving.RetryPolicy` semantics against a
*scripted* wire-protocol server, so every rejection/error/acceptance is
deterministic — no real scheduler or worker crash is needed to exercise
the client-side state machine:

* a rejected frame is re-submitted after at least the server's
  ``retry_after_ms`` hint (the hint is a floor under the policy backoff);
* an exhausted retry budget surfaces the *original typed*
  :class:`RequestRejectedError`, not a retry-specific wrapper;
* retries never outlive the frame's ``deadline_ms`` freshness budget;
* ``on_rejected="drop"`` bypasses retries entirely;
* ``"error"`` replies are re-submitted only when the server marked them
  ``retryable`` (worker crashes — execution is pure, so re-running a
  frame that never produced a result is safe; deterministic model
  failures must not be retried).

The re-execution-safety argument pinned here is documented on
``DeviceClient`` (Resilience section) and ``RetryPolicy``.
"""

import socket
import threading
from collections import deque
from time import monotonic

import numpy as np
import pytest

from repro.serving import RequestRejectedError, RetryPolicy
from repro.system.engine import DeviceClient
from repro.system.messages import (KIND_ERROR, KIND_FRAME, KIND_HELLO,
                                   KIND_REJECTED, KIND_RESULT, KIND_STOP,
                                   REJECT_REASON_META_KEY,
                                   RETRY_AFTER_MS_META_KEY, Message,
                                   recv_message, send_message)

FRAME = object()


def device_fn(_frame):
    return {"x": np.arange(4.0)}, {}


class ScriptedServer:
    """A wire-speaking edge server whose reply per arrival is scripted.

    ``script`` maps a frame_id to a deque of actions consumed one per
    arrival of that frame: ``("reject", reason, retry_after_ms)``,
    ``("error", retryable)``, or ``"result"``; an exhausted (or absent)
    script echoes the frame's arrays back as a result.  Every arrival is
    logged with a monotonic timestamp for backoff assertions.
    """

    def __init__(self, script=None):
        self.script = {fid: deque(actions)
                       for fid, actions in (script or {}).items()}
        self.arrivals = []  # [(monotonic, frame_id)]
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.host, self.port = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _reply(self, message):
        action = "result"
        if self.script.get(message.frame_id):
            action = self.script[message.frame_id].popleft()
        if action == "result":
            return Message(kind=KIND_RESULT, frame_id=message.frame_id,
                           arrays=dict(message.arrays), meta={},
                           wire_format=message.wire_format)
        if action[0] == "reject":
            _, reason, retry_after_ms = action
            return Message(kind=KIND_REJECTED, frame_id=message.frame_id,
                           meta={REJECT_REASON_META_KEY: reason,
                                 RETRY_AFTER_MS_META_KEY: retry_after_ms},
                           wire_format=message.wire_format)
        if action[0] == "error":
            return Message(kind=KIND_ERROR, frame_id=message.frame_id,
                           meta={"error": "ShardCrashedError: boom",
                                 "traceback": "scripted traceback",
                                 "retryable": action[1]},
                           wire_format=message.wire_format)
        raise AssertionError(f"unknown scripted action {action!r}")

    def _serve(self):
        try:
            conn, _ = self._listener.accept()
        except OSError:
            return
        with conn:
            while True:
                try:
                    message = recv_message(conn)
                except (OSError, ValueError):
                    return
                if message is None or message.kind == KIND_STOP:
                    return
                if message.kind == KIND_HELLO:
                    send_message(conn, Message(kind=KIND_HELLO,
                                               meta={"models": []}))
                    continue
                assert message.kind == KIND_FRAME
                self.arrivals.append((monotonic(), message.frame_id))
                try:
                    send_message(conn, self._reply(message))
                except OSError:
                    return

    def submissions(self, frame_id):
        return [t for t, fid in self.arrivals if fid == frame_id]

    def close(self):
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=10.0)


def run_one(server, policy, **client_kwargs):
    client = DeviceClient(server.host, server.port, retry_policy=policy,
                          **client_kwargs)
    try:
        return client.run_pipeline([FRAME], device_fn, timeout_s=30.0)
    finally:
        client.close()
        server.close()


# ----------------------------------------------------------------------
# policy semantics against the scripted server
# ----------------------------------------------------------------------
class TestRetrySemantics:
    def test_rejected_then_accepted_honors_retry_after(self):
        server = ScriptedServer({0: [("reject", "capacity", 150.0)]})
        policy = RetryPolicy(max_retries=3, backoff_ms=1.0, jitter=0.0)
        results, stats = run_one(server, policy)
        assert len(results) == 1
        np.testing.assert_allclose(results[0].arrays["x"], np.arange(4.0))
        assert stats.frames_retried == 1
        assert stats.retry_histogram == {1: 1}
        assert stats.frames_rejected == 0
        times = server.submissions(0)
        assert len(times) == 2  # original + one re-submission
        # The server's hint is a floor under the policy's (smaller) backoff.
        assert times[1] - times[0] >= 0.150

    def test_budget_exhausted_raises_original_typed_error(self):
        server = ScriptedServer({0: [("reject", "capacity", 1.0)] * 5})
        policy = RetryPolicy(max_retries=2, backoff_ms=1.0, jitter=0.0)
        with pytest.raises(RequestRejectedError) as excinfo:
            run_one(server, policy)
        assert excinfo.value.reason == "capacity"
        assert excinfo.value.frame_id == 0
        # 1 original + exactly max_retries re-submissions, then the error.
        assert len(server.submissions(0)) == 3

    def test_retries_never_outlive_deadline_ms(self):
        server = ScriptedServer({0: [("reject", "capacity", 0.0)] * 5})
        # Minimum backoff (500ms) exceeds the whole freshness budget, so
        # not even one retry may be scheduled.
        policy = RetryPolicy(max_retries=5, backoff_ms=500.0, jitter=0.0)
        start = monotonic()
        with pytest.raises(RequestRejectedError):
            run_one(server, policy, deadline_ms=150.0)
        assert len(server.submissions(0)) == 1
        assert monotonic() - start < 0.5  # failed now, not after the nap

    def test_drop_mode_bypasses_retries(self):
        server = ScriptedServer({0: [("reject", "capacity", 1.0)]})
        policy = RetryPolicy(max_retries=3, backoff_ms=1.0, jitter=0.0)
        results, stats = run_one(server, policy, on_rejected="drop")
        assert results == []
        assert stats.frames_rejected == 1
        assert stats.frames_retried == 0
        assert len(server.submissions(0)) == 1

    def test_retryable_error_is_resubmitted(self):
        server = ScriptedServer({0: [("error", True)]})
        policy = RetryPolicy(max_retries=2, backoff_ms=1.0, jitter=0.0)
        results, stats = run_one(server, policy)
        assert len(results) == 1
        assert stats.frames_retried == 1
        assert len(server.submissions(0)) == 2

    def test_deterministic_error_is_not_retried(self):
        server = ScriptedServer({0: [("error", False)]})
        policy = RetryPolicy(max_retries=3, backoff_ms=1.0, jitter=0.0)
        with pytest.raises(RuntimeError, match="scripted traceback"):
            run_one(server, policy)
        assert len(server.submissions(0)) == 1

    def test_retry_connection_errors_opt_out(self):
        server = ScriptedServer({0: [("error", True)]})
        policy = RetryPolicy(max_retries=3, backoff_ms=1.0, jitter=0.0,
                             retry_connection_errors=False)
        with pytest.raises(RuntimeError, match="boom"):
            run_one(server, policy)
        assert len(server.submissions(0)) == 1

    def test_no_policy_keeps_seed_semantics(self):
        server = ScriptedServer({0: [("reject", "capacity", 7.0)]})
        with pytest.raises(RequestRejectedError) as excinfo:
            run_one(server, None)
        assert excinfo.value.retry_after_ms == 7.0
        assert len(server.submissions(0)) == 1

    def test_disabled_policy_is_a_no_op(self):
        server = ScriptedServer({0: [("reject", "capacity", 1.0)]})
        with pytest.raises(RequestRejectedError):
            run_one(server, RetryPolicy())  # max_retries=0: disabled
        assert len(server.submissions(0)) == 1


# ----------------------------------------------------------------------
# RetryPolicy config unit behavior
# ----------------------------------------------------------------------
class TestRetryPolicyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_ms=-1.0)

    def test_enabled_flag(self):
        assert not RetryPolicy().enabled
        assert RetryPolicy(max_retries=1).enabled

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_retries=10, backoff_ms=10.0,
                             backoff_multiplier=2.0, max_backoff_ms=50.0,
                             jitter=0.0)
        delays = [policy.delay_ms(attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays == [10.0, 20.0, 40.0, 50.0, 50.0]

    def test_server_hint_is_a_floor(self):
        policy = RetryPolicy(max_retries=3, backoff_ms=10.0, jitter=0.0)
        assert policy.delay_ms(1, floor_ms=250.0) == 250.0
        assert policy.delay_ms(1, floor_ms=5.0) == 10.0

    def test_jitter_is_bounded_and_injectable(self):
        policy = RetryPolicy(max_retries=1, backoff_ms=100.0, jitter=0.1)
        assert policy.delay_ms(1, rand=lambda: 1.0) == pytest.approx(110.0)
        assert policy.delay_ms(1, rand=lambda: 0.0) == pytest.approx(90.0)
        assert policy.delay_ms(1, rand=lambda: 0.5) == pytest.approx(100.0)

    def test_round_trips_through_client_config(self):
        from repro.serving import ClientConfig
        config = ClientConfig(retry={"max_retries": 4, "backoff_ms": 12.5})
        assert isinstance(config.retry, RetryPolicy)
        assert config.retry.max_retries == 4
        again = ClientConfig.from_dict(config.to_dict())
        assert again.retry == config.retry
