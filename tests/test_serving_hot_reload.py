"""Hot zoo reload: ``ModelRepository.publish`` under live traffic.

The guarantee under test: a publish atomically swaps the serving table
between frames, and every frame — including frames already in flight across
the swap — is answered wholly from exactly one snapshot (the one whose
device segment produced it, as long as it is retained).  A "mixed" frame
(device half from one snapshot, edge half from another) would produce
logits matching neither snapshot's reference, which is exactly what the
assertions below would catch: the two published zoos share entry names but
differ in both the device-side topology (kNN ``k``) and the edge-side
weights (``Combine`` width).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import (Architecture, ArchitectureModel, ArchitectureZoo,
                        ZooEntry)
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.serving import (SNAPSHOT_META_KEY, BatchingConfig, ModelRepository,
                           ServingConfig, serve)
from repro.system import EdgeServer, DeviceClient


def _arch(name: str, k: int, width: int) -> Architecture:
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=k),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.COMBINE, width),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name=name)


#: Same entry name, different device topology (k) AND edge weights (width):
#: any device/edge mix across the two versions is numerically detectable.
ZOO_V1 = ArchitectureZoo([ZooEntry("m", _arch("m", k=4, width=16),
                                   0.9, 40.0, 0.4)])
ZOO_V2 = ArchitectureZoo([ZooEntry("m", _arch("m", k=8, width=32),
                                   0.93, 55.0, 0.5)])


def _frames(count: int = 4):
    graphs = SyntheticModelNet40(num_points=24, samples_per_class=2,
                                 num_classes=3, seed=1).generate()
    return [Batch.from_graphs([graphs[i % len(graphs)]]) for i in range(count)]


def _reference_logits(zoo: ArchitectureZoo, frames) -> list:
    model = ArchitectureModel(zoo.get("m").architecture, in_dim=3,
                              num_classes=3, seed=0)
    return [model(frame).data for frame in frames]


def _matches(logits, *references, atol=1e-8) -> bool:
    return any(np.allclose(logits, ref, atol=atol) for ref in references)


# ----------------------------------------------------------------------
# Repository basics
# ----------------------------------------------------------------------
class TestModelRepository:
    def test_publish_versions_increment(self):
        repo = ModelRepository(in_dim=3, num_classes=3)
        assert repo.version == 0
        assert repo.publish(ZOO_V1).version == 1
        assert repo.publish(ZOO_V2).version == 2
        assert repo.version == 2
        assert repo.snapshot().zoo is ZOO_V2

    def test_snapshot_before_publish_raises(self):
        repo = ModelRepository(in_dim=3, num_classes=3)
        with pytest.raises(RuntimeError, match="publish"):
            repo.snapshot()
        with pytest.raises(RuntimeError, match="publish"):
            repo.device_fn("m")(_frames(1)[0])

    def test_publish_empty_zoo_rejected(self):
        repo = ModelRepository(in_dim=3, num_classes=3)
        with pytest.raises(ValueError, match="empty"):
            repo.publish(ArchitectureZoo())
        assert repo.version == 0

    def test_invalid_retain_rejected(self):
        with pytest.raises(ValueError, match="retain"):
            ModelRepository(in_dim=3, num_classes=3, retain=0)

    def test_device_fn_stamps_snapshot_version(self):
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        _, meta = repo.device_fn("m")(_frames(1)[0])
        assert meta[SNAPSHOT_META_KEY] == 1
        repo.publish(ZOO_V2)
        _, meta = repo.device_fn("m")(_frames(1)[0])
        assert meta[SNAPSHOT_META_KEY] == 2

    def test_unknown_entry_raises_with_available_names(self):
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        with pytest.raises(KeyError, match="nope"):
            repo.device_fn("nope")(_frames(1)[0])

    def test_aborted_publish_burns_its_version(self):
        """A preparer abort may have replicated the version to shards —
        re-minting it for a different zoo would let them serve stale
        models under a reused number, so the number must be consumed."""
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)

        def failing_preparer(snapshot):
            raise RuntimeError("replication exploded")

        repo.add_preparer(failing_preparer)
        with pytest.raises(RuntimeError, match="replication exploded"):
            repo.publish(ZOO_V2)
        assert repo.version == 1  # old snapshot still installed...
        repo.remove_preparer(failing_preparer)
        snapshot = repo.publish(ZOO_V2)
        assert snapshot.version == 3  # ...but v2 was burned by the abort

    def test_subscribers_notified_once_per_publish(self):
        repo = ModelRepository(in_dim=3, num_classes=3)
        seen = []
        repo.subscribe(seen.append)
        repo.subscribe(seen.append)  # duplicate registration is a no-op
        repo.publish(ZOO_V1)
        assert [s.version for s in seen] == [1]
        repo.unsubscribe(seen.append)
        repo.publish(ZOO_V2)
        assert [s.version for s in seen] == [1]


# ----------------------------------------------------------------------
# Snapshot pinning (deterministic, no sockets)
# ----------------------------------------------------------------------
class TestSnapshotPinning:
    def test_in_flight_frame_is_answered_by_its_own_snapshot(self):
        frames = _frames(2)
        ref_v1 = _reference_logits(ZOO_V1, frames)
        ref_v2 = _reference_logits(ZOO_V2, frames)
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        device_fn = repo.device_fn("m")
        # The frame's device half runs against v1...
        in_flight = [device_fn(frame) for frame in frames]
        # ...then a publish lands while it is "on the wire".
        repo.publish(ZOO_V2)
        edge_fn = repo.edge_fns()["m"]
        for (arrays, meta), expected in zip(in_flight, ref_v1):
            np.testing.assert_allclose(edge_fn(arrays, meta)[0]["logits"],
                                       expected, atol=1e-8)
        # New frames flow wholly through v2.
        for frame, expected in zip(frames, ref_v2):
            arrays, meta = device_fn(frame)
            np.testing.assert_allclose(edge_fn(arrays, meta)[0]["logits"],
                                       expected, atol=1e-8)

    def test_unpinned_frame_served_by_current_snapshot(self):
        frames = _frames(1)
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        arrays, meta = repo.device_fn("m")(frames[0])
        meta.pop(SNAPSHOT_META_KEY)
        logits = repo.edge_fns()["m"](arrays, meta)[0]["logits"]
        np.testing.assert_allclose(logits,
                                   _reference_logits(ZOO_V1, frames)[0],
                                   atol=1e-8)

    def test_evicted_snapshot_falls_back_to_current(self):
        frames = _frames(1)
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1, retain=1)
        arrays, meta = repo.device_fn("m")(frames[0])
        assert meta[SNAPSHOT_META_KEY] == 1
        # retain=1: publishing v2 drops v1 immediately.  Publish a zoo whose
        # device half matches v1 (same k) so the fallback is well-defined,
        # and check the frame is answered by the *current* edge weights.
        zoo_same_device = ArchitectureZoo([ZooEntry(
            "m", _arch("m", k=4, width=32), 0.9, 40.0, 0.4)])
        repo.publish(zoo_same_device)
        logits = repo.edge_fns()["m"](arrays, meta)[0]["logits"]
        np.testing.assert_allclose(
            logits, _reference_logits(zoo_same_device, frames)[0], atol=1e-8)

    def test_pinned_frames_survive_entry_removal(self):
        """A publish that drops an entry must not strand its in-flight frames."""
        frames = _frames(2)
        zoo_both = ArchitectureZoo([
            ZooEntry("m", _arch("m", k=4, width=16), 0.9, 40.0, 0.4),
            ZooEntry("extra", _arch("extra", k=6, width=16), 0.92, 50.0, 0.5),
        ])
        ref_extra = [ArchitectureModel(zoo_both.get("extra").architecture,
                                       in_dim=3, num_classes=3, seed=0)(f).data
                     for f in frames]
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=zoo_both)
        in_flight = [repo.device_fn("extra")(frame) for frame in frames]
        repo.publish(ZOO_V2)  # drops "extra"; v1 stays retained
        # The routing tables still cover every retained snapshot's names...
        assert repo.serving_names() == ["extra", "m"]
        edge_fn = repo.edge_fns()["extra"]
        for (arrays, meta), expected in zip(in_flight, ref_extra):
            np.testing.assert_allclose(edge_fn(arrays, meta)[0]["logits"],
                                       expected, atol=1e-8)
        # ...while a fresh (unpinned) frame for the dropped entry fails
        # cleanly against the current snapshot.
        arrays, meta = in_flight[0]
        with pytest.raises(KeyError, match="extra"):
            edge_fn(arrays, {k: v for k, v in meta.items()
                             if k != SNAPSHOT_META_KEY})

    def test_batched_router_groups_mixed_snapshots(self):
        frames = _frames(4)
        ref_v1 = _reference_logits(ZOO_V1, frames)
        ref_v2 = _reference_logits(ZOO_V2, frames)
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        device_fn = repo.device_fn("m")
        pinned_v1 = [device_fn(frame) for frame in frames[:2]]
        repo.publish(ZOO_V2)
        pinned_v2 = [device_fn(frame) for frame in frames[2:]]
        # One coalesced batch spanning the publish: 2 frames pinned to v1
        # interleaved with 2 pinned to v2.
        batch = [pinned_v1[0], pinned_v2[0], pinned_v1[1], pinned_v2[1]]
        results = repo.batch_fns()["m"](batch)
        assert len(results) == 4
        np.testing.assert_allclose(results[0][0]["logits"], ref_v1[0], atol=1e-8)
        np.testing.assert_allclose(results[1][0]["logits"], ref_v2[2], atol=1e-8)
        np.testing.assert_allclose(results[2][0]["logits"], ref_v1[1], atol=1e-8)
        np.testing.assert_allclose(results[3][0]["logits"], ref_v2[3], atol=1e-8)


# ----------------------------------------------------------------------
# EdgeServer.install_table (engine-level hot swap)
# ----------------------------------------------------------------------
class TestInstallTable:
    def test_swap_changes_serving_between_frames(self):
        double = lambda arrays, meta: ({"y": arrays["x"] * 2.0}, {})
        triple = lambda arrays, meta: ({"y": arrays["x"] * 3.0}, {})
        device_fn = lambda frame: ({"x": np.asarray(frame, dtype=float)}, {})
        server = EdgeServer(double).start()
        client = DeviceClient(server.host, server.port)
        try:
            results, _ = client.run_pipeline([np.ones((2, 2))], device_fn)
            np.testing.assert_allclose(results[0].arrays["y"], 2.0)
            server.install_table(triple)
            results, _ = client.run_pipeline([np.ones((2, 2))], device_fn)
            np.testing.assert_allclose(results[0].arrays["y"], 3.0)
        finally:
            client.close()
            server.stop()

    def test_invalid_table_rejected_and_old_table_kept(self):
        echo = lambda arrays, meta: (dict(arrays), {})
        server = EdgeServer(echo)
        with pytest.raises(ValueError, match="batch_fns"):
            server.install_table(echo, batch_fns={"typo": lambda reqs: reqs})
        with pytest.raises(ValueError, match="edge_fn"):
            server.install_table()
        assert server.edge_fn is echo  # old table untouched
        server.stop()

    def test_table_mappings_are_read_only(self):
        """Mutating server.edge_fns must fail loudly, not edit a copy."""
        echo = lambda arrays, meta: (dict(arrays), {})
        server = EdgeServer(edge_fns={"a": echo})
        with pytest.raises(TypeError):
            server.edge_fns["b"] = echo
        with pytest.raises(TypeError):
            server.batch_fns["b"] = lambda reqs: list(reqs)
        with pytest.raises(AttributeError):
            server.edge_fn = echo
        server.stop()

    def test_table_snapshot_visible(self):
        echo = lambda arrays, meta: (dict(arrays), {})
        server = EdgeServer(edge_fns={"a": echo})
        assert server.table.model_names() == ["a"]
        server.install_table(edge_fns={"b": echo, "c": echo})
        assert server.table.model_names() == ["b", "c"]
        assert server._default_name == "b"
        server.stop()


# ----------------------------------------------------------------------
# Hot reload under live socket traffic
# ----------------------------------------------------------------------
class TestHotReloadUnderTraffic:
    def _assert_all_from_one_snapshot(self, outputs, frames, references):
        """Every served frame must equal one snapshot's reference exactly."""
        assert outputs, "no frames were served"
        for frame_index, logits in outputs:
            refs = [ref[frame_index] for ref in references]
            assert _matches(logits, *refs), (
                f"frame {frame_index} matches no snapshot's reference — "
                "served by a half-swapped table?")

    def test_publish_swaps_zoo_mid_traffic(self):
        frames = _frames(4)
        ref_v1 = _reference_logits(ZOO_V1, frames)
        ref_v2 = _reference_logits(ZOO_V2, frames)
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        outputs, errors = [], []
        stop = threading.Event()

        with serve(ZOO_V1, in_dim=3, num_classes=3, repository=repo) as app:
            def stream():
                try:
                    with app.client(model="m") as client:
                        while not stop.is_set():
                            results, _ = client.run(frames)
                            outputs.extend(
                                (r.frame_id % len(frames), r.arrays["logits"])
                                for r in results)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            streamer = threading.Thread(target=stream)
            streamer.start()
            time.sleep(0.15)           # let v1 traffic flow
            repo.publish(ZOO_V2)       # hot swap under live load
            time.sleep(0.15)           # let v2 traffic flow
            stop.set()
            streamer.join(timeout=30.0)
            assert not errors, errors

            self._assert_all_from_one_snapshot(outputs, frames,
                                               (ref_v1, ref_v2))
            # Traffic after the publish runs wholly on v2.
            with app.client(model="m") as client:
                results, _ = client.run(frames)
            for frame, result in zip(frames, results):
                np.testing.assert_allclose(
                    result.arrays["logits"],
                    ref_v2[frames.index(frame)], atol=1e-8)

    def test_hello_lists_new_entries_after_publish(self):
        zoo_extra = ArchitectureZoo([
            ZooEntry("m", _arch("m", k=8, width=32), 0.93, 55.0, 0.5),
            ZooEntry("tiny", _arch("tiny", k=4, width=8), 0.8, 15.0, 0.1),
        ])
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        with serve(ZOO_V1, in_dim=3, num_classes=3, repository=repo) as app:
            with app.client(model="m") as client:
                assert client.handshake()["models"] == ["m"]
            repo.publish(zoo_extra)
            with app.client(model="tiny") as client:
                assert client.handshake()["models"] == ["m", "tiny"]
                results, _ = client.run(_frames(2))
                assert len(results) == 2

    def test_concurrent_clients_and_repeated_publishes(self):
        """Hammer: batched serving + repeated hot swaps, no wrong frame."""
        frames = _frames(4)
        ref_v1 = _reference_logits(ZOO_V1, frames)
        ref_v2 = _reference_logits(ZOO_V2, frames)
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        config = ServingConfig(batching=BatchingConfig(max_batch_size=4,
                                                       max_wait_ms=2.0))
        outputs, errors = [], []
        rounds_per_client = 6

        with serve(ZOO_V1, config, in_dim=3, num_classes=3,
                   repository=repo) as app:
            def stream(index):
                try:
                    with app.client(model="m",
                                    name=f"client-{index}") as client:
                        for _ in range(rounds_per_client):
                            results, _ = client.run(frames)
                            outputs.extend(
                                (r.frame_id % len(frames), r.arrays["logits"])
                                for r in results)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=stream, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for zoo in (ZOO_V2, ZOO_V1, ZOO_V2):
                time.sleep(0.05)
                repo.publish(zoo)
            for thread in threads:
                thread.join(timeout=60.0)
        assert not errors, errors
        assert len(outputs) == 3 * rounds_per_client * len(frames)
        self._assert_all_from_one_snapshot(outputs, frames, (ref_v1, ref_v2))
