"""Tests for loss functions and optimizers (including end-to-end convergence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestLosses:
    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = nn.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_cross_entropy_uniform_equals_log_classes(self):
        logits = Tensor(np.zeros((4, 8)))
        loss = nn.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(8), abs=1e-9)

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(np.zeros(4)), np.array([0]))
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_mse_and_mae(self):
        pred = Tensor(np.array([1.0, 3.0]))
        target = np.array([0.0, 1.0])
        assert nn.mse_loss(pred, target).item() == pytest.approx(2.5)
        assert nn.mae_loss(pred, target).item() == pytest.approx(1.5)

    def test_mape_is_relative(self):
        pred = Tensor(np.array([110.0, 220.0]))
        target = np.array([100.0, 200.0])
        assert nn.mape_loss(pred, target).item() == pytest.approx(0.1)

    def test_accuracy_and_balanced_accuracy(self):
        logits = Tensor(np.array([[2.0, 0.0], [2.0, 0.0], [2.0, 0.0], [0.0, 2.0]]))
        targets = np.array([0, 0, 1, 1])
        assert nn.accuracy(logits, targets) == pytest.approx(0.75)
        assert nn.balanced_accuracy(logits, targets) == pytest.approx(0.75)

    def test_balanced_accuracy_differs_under_imbalance(self):
        # 9 of class 0 (all right), 1 of class 1 (wrong): OA=0.9, mAcc=0.5.
        logits = Tensor(np.vstack([np.tile([2.0, 0.0], (10, 1))]))
        targets = np.array([0] * 9 + [1])
        assert nn.accuracy(logits, targets) == pytest.approx(0.9)
        assert nn.balanced_accuracy(logits, targets) == pytest.approx(0.5)


class TestOptimizers:
    @staticmethod
    def _quadratic_parameter():
        return nn.Parameter(np.array([5.0, -3.0]))

    def test_sgd_minimizes_quadratic(self):
        param = self._quadratic_parameter()
        opt = nn.SGD([param], lr=0.1)
        for _ in range(200):
            loss = (Tensor(param.data * 0) + param * param).sum()
            loss = (param * param).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(param.data).max() < 1e-3

    def test_sgd_momentum_converges_faster_than_plain(self):
        def run(momentum):
            param = self._quadratic_parameter()
            opt = nn.SGD([param], lr=0.02, momentum=momentum)
            for _ in range(60):
                loss = (param * param).sum()
                opt.zero_grad()
                loss.backward()
                opt.step()
            return float(np.abs(param.data).max())
        assert run(0.9) < run(0.0)

    def test_adam_minimizes_quadratic(self):
        param = self._quadratic_parameter()
        opt = nn.Adam([param], lr=0.2)
        for _ in range(300):
            loss = (param * param).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(param.data).max() < 1e-2

    def test_weight_decay_shrinks_parameters(self):
        param = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([param], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            (param * 0.0).sum().backward()
            opt.step()
        assert abs(param.data[0]) < 1.0

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter(np.ones(1))], lr=0.0)

    def test_step_lr_decays(self):
        opt = nn.SGD([nn.Parameter(np.ones(1))], lr=1.0)
        scheduler = nn.StepLR(opt, step_size=2, gamma=0.5)
        scheduler.step()
        assert opt.lr == pytest.approx(1.0)
        scheduler.step()
        assert opt.lr == pytest.approx(0.5)


class TestEndToEndTraining:
    def test_mlp_learns_xor(self):
        rng = np.random.default_rng(0)
        x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 8)
        y = np.array([0, 1, 1, 0] * 8)
        model = nn.MLP([2, 16, 2], rng=rng)
        opt = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(200):
            logits = model(Tensor(x))
            loss = nn.cross_entropy(logits, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert nn.accuracy(model(Tensor(x)), y) == pytest.approx(1.0)

    def test_linear_regression_recovers_weights(self):
        rng = np.random.default_rng(1)
        true_w = np.array([[2.0], [-1.0], [0.5]])
        x = rng.standard_normal((128, 3))
        y = x @ true_w
        layer = nn.Linear(3, 1, rng=rng)
        opt = nn.Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            loss = nn.mse_loss(layer(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)
