"""Self-healing serving: supervised respawn, quarantine, and shm hygiene.

The supervisor (``repro.serving.supervisor``) turns crash *detection* into
crash *recovery*, and each of its safety bounds is pinned here with a real
SIGKILL rather than a simulated flag:

* killing one of two shard workers (and, separately, one of two cluster
  node replicas) under live traffic with a client-side
  :class:`~repro.serving.RetryPolicy` produces **zero client-visible
  failures**: the pool returns to full strength within the backoff budget
  and post-respawn logits stay <= 1e-9 equivalent to the in-process
  reference;
* a slot that dies ``quarantine_deaths`` times within the window is
  quarantined — never respawned again — with the reason surfaced in
  ``app.stats()``, while publishes keep succeeding against the survivors;
* :meth:`~repro.serving.sharding.ShardPool.respawn` closes *and unlinks*
  the dead worker's shared-memory rings before the replacement spawns, so
  arbitrarily long restart histories never leak segments; ``stop()``
  racing an in-flight respawn is clean either way the race lands.

The chaos tests also dump the supervisor's machine-readable counters to
``benchmarks/results/supervisor_stats.json`` (restart totals,
time-to-full-strength, hardware envelope) — the artifact the CI
``cluster-chaos`` job uploads.
"""

from __future__ import annotations

import json
import os
import platform
import threading

import numpy as np
import pytest

from conftest import wait_until
from repro.core import (Architecture, ArchitectureModel, ArchitectureZoo,
                        ZooEntry)
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.runtime.node import NodeProcess
from repro.serving import (ClientConfig, ClusterConfig, ModelRepository,
                           RetryPolicy, ServingConfig, ShardingConfig,
                           SupervisorConfig, serve, sharding_supported)
from repro.serving.sharding import ShardPool

needs_shm = pytest.mark.skipif(
    not sharding_supported("shm"),
    reason="platform lacks multiprocessing.shared_memory")


def _arch(name: str, k: int, width: int) -> Architecture:
    return Architecture(ops=(
        OpSpec(OpType.SAMPLE, "knn", k=k),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.COMBINE, width),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name=name)


ZOO_V1 = ArchitectureZoo([ZooEntry("m", _arch("m", k=4, width=16),
                                   0.9, 40.0, 0.4)])
ZOO_V2 = ArchitectureZoo([ZooEntry("m", _arch("m", k=8, width=32),
                                   0.93, 55.0, 0.5)])


def _frames(count: int = 2):
    graphs = SyntheticModelNet40(num_points=24, samples_per_class=2,
                                 num_classes=3, seed=1).generate()
    return [Batch.from_graphs([graphs[i % len(graphs)]]) for i in range(count)]


def _reference_logits(zoo: ArchitectureZoo, name: str, frames) -> list:
    model = ArchitectureModel(zoo.get(name).architecture, in_dim=3,
                              num_classes=3, seed=0)
    return [model(frame).data for frame in frames]


def _supervisor(**kwargs) -> SupervisorConfig:
    """Fast knobs: tight polling and a small backoff so tests heal in ms."""
    defaults = dict(enabled=True, poll_interval_s=0.02,
                    backoff_initial_s=0.05, backoff_multiplier=2.0,
                    backoff_max_s=0.2, backoff_jitter=0.0,
                    quarantine_deaths=4, quarantine_window_s=30.0,
                    respawn_timeout_s=60.0)
    defaults.update(kwargs)
    return SupervisorConfig(**defaults)


#: Client resilience for the chaos streams: enough budget that a frame
#: caught mid-crash always outlives the respawn window.
RETRIES = ClientConfig(retry=RetryPolicy(max_retries=8, backoff_ms=25.0,
                                         max_backoff_ms=200.0))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                           "benchmarks", "results")


def _record_supervisor_artifact(tier: str, stats: dict) -> None:
    """Merge one tier's supervisor counters into the CI chaos artifact."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "supervisor_stats.json")
    payload = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[tier] = stats
    payload["hardware"] = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


class _Traffic:
    """A live client stream with retries; collects rounds and failures."""

    def __init__(self, app, frames) -> None:
        self.app = app
        self.frames = frames
        self.stop_event = threading.Event()
        self.rounds: list = []
        self.errors: list = []
        self.frames_retried = 0
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            with self.app.client(model="m", config=RETRIES) as client:
                while not self.stop_event.is_set():
                    results, stats = client.run(self.frames)
                    self.frames_retried += stats.frames_retried
                    self.rounds.append(results)
        except Exception as exc:  # pragma: no cover - the failure we forbid
            self.errors.append(exc)

    def __enter__(self) -> "_Traffic":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop_event.set()
        self._thread.join(timeout=120.0)


def _assert_rounds_match(rounds, expected) -> None:
    """Every round of every stream: complete and <= 1e-9 to the reference."""
    assert rounds, "traffic thread completed no rounds"
    for results in rounds:
        assert len(results) == len(expected)
        for result, reference in zip(results, expected):
            np.testing.assert_allclose(result.arrays["logits"], reference,
                                       atol=1e-9)


def _ring_names(shard) -> list:
    """The two shared-memory segment names behind one shard's channel."""
    channel = shard.channel
    return [channel._send._shm.name, channel._recv._shm.name]


def _shm_exists(name: str) -> bool:
    from multiprocessing import shared_memory
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


# ----------------------------------------------------------------------
# SupervisorConfig unit behavior
# ----------------------------------------------------------------------
class TestSupervisorConfig:
    def test_defaults_disabled(self):
        config = SupervisorConfig()
        assert not config.enabled  # seed behavior: route around, no respawn

    def test_validation(self):
        with pytest.raises(ValueError, match="poll_interval_s"):
            SupervisorConfig(poll_interval_s=0.0)
        with pytest.raises(ValueError, match="backoff_multiplier"):
            SupervisorConfig(backoff_multiplier=0.5)
        with pytest.raises(ValueError, match="quarantine_deaths"):
            SupervisorConfig(quarantine_deaths=0)
        with pytest.raises(ValueError, match="backoff_jitter"):
            SupervisorConfig(backoff_jitter=1.5)

    def test_backoff_grows_exponentially_and_caps(self):
        config = SupervisorConfig(backoff_initial_s=0.1,
                                  backoff_multiplier=2.0, backoff_max_s=0.5,
                                  backoff_jitter=0.0)
        delays = [config.backoff_s(deaths) for deaths in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.5]

    def test_backoff_jitter_bounded_and_injectable(self):
        config = SupervisorConfig(backoff_initial_s=1.0, backoff_jitter=0.1)
        assert config.backoff_s(1, rand=lambda: 1.0) == pytest.approx(1.1)
        assert config.backoff_s(1, rand=lambda: 0.0) == pytest.approx(0.9)
        assert config.backoff_s(1, rand=lambda: 0.5) == pytest.approx(1.0)

    def test_round_trips_through_serving_config(self):
        config = ServingConfig(supervisor=SupervisorConfig(
            enabled=True, quarantine_deaths=5, backoff_initial_s=0.25))
        rebuilt = ServingConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.supervisor.enabled
        assert rebuilt.supervisor.quarantine_deaths == 5


# ----------------------------------------------------------------------
# ShardPool.respawn hygiene (pool-level, no supervisor thread)
# ----------------------------------------------------------------------
@needs_shm
class TestShardRespawnHygiene:
    def test_respawn_unlinks_dead_rings_across_cycles(self):
        """No shm leak over restart cycles; replacements re-pin the snapshot."""
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        pool = ShardPool(repo, ShardingConfig(num_shards=2)).start()
        try:
            for cycle in range(3):
                victim = pool._shards[0]
                names = _ring_names(victim)
                assert all(_shm_exists(name) for name in names)
                victim.process.kill()
                wait_until(lambda: not victim.alive,
                           message="victim shard marked dead")
                pool.respawn(0)
                assert all(not _shm_exists(name) for name in names), (
                    f"cycle {cycle}: dead shard's rings still linked — "
                    "respawn leaks shared memory")
                assert pool.restarts(0) == cycle + 1
                assert pool.live_count() == 2
                # The replacement bootstrapped from the current snapshot.
                assert pool.stats()[0].snapshot_version == repo.version
        finally:
            pool.stop()

    def test_respawn_refuses_live_and_quarantined_slots(self):
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        pool = ShardPool(repo, ShardingConfig(num_shards=2)).start()
        try:
            with pytest.raises(RuntimeError, match="alive"):
                pool.respawn(0)
            victim = pool._shards[1]
            victim.process.kill()
            wait_until(lambda: not victim.alive,
                       message="victim shard marked dead")
            pool.set_quarantined(1, "crash loop: test")
            with pytest.raises(RuntimeError, match="quarantined"):
                pool.respawn(1)
        finally:
            pool.stop()

    def test_stop_during_inflight_respawn_is_clean(self):
        """stop() racing respawn(): both orders settle with nothing leaked."""
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        pool = ShardPool(repo, ShardingConfig(num_shards=2)).start()
        initial_names = [name for shard in pool._shards
                         for name in _ring_names(shard)]
        victim = pool._shards[0]
        victim.process.kill()
        wait_until(lambda: not victim.alive,
                   message="victim shard marked dead")
        outcome = []

        def respawn():
            try:
                pool.respawn(0)
                outcome.append("respawned")
            except RuntimeError as exc:
                outcome.append(exc)

        thread = threading.Thread(target=respawn)
        thread.start()
        pool.stop()
        thread.join(timeout=120.0)
        assert not thread.is_alive(), "respawn hung across stop()"
        assert len(outcome) == 1
        if isinstance(outcome[0], RuntimeError):
            # Lost the race: the abort must name the stop, not crash oddly.
            assert "stopped" in str(outcome[0])
        # Either way the pool is fully torn down: every ring (the corpse's,
        # the survivor's, and a swapped-in replacement's) is unlinked.
        final_names = [name for shard in pool._shards
                       for name in _ring_names(shard)]
        for name in set(initial_names + final_names):
            assert not _shm_exists(name), f"segment {name} leaked"


# ----------------------------------------------------------------------
# Shard tier chaos: SIGKILL under live traffic, crash-loop quarantine
# ----------------------------------------------------------------------
@pytest.mark.slow
@needs_shm
class TestShardSelfHealing:
    def test_sigkill_under_traffic_returns_to_full_strength(self):
        """Kill 1 of 2 shards mid-stream: zero failures, full recovery."""
        frames = _frames(2)
        expected = _reference_logits(ZOO_V1, "m", frames)
        config = ServingConfig(sharding=ShardingConfig(num_shards=2),
                               supervisor=_supervisor())
        with serve(ZOO_V1, config, in_dim=3, num_classes=3) as app:
            assert app.supervisor is not None and app.supervisor.running
            pool = app.shard_pool
            with _Traffic(app, frames) as traffic:
                wait_until(lambda: len(traffic.rounds) >= 2,
                           message="pre-kill traffic flowing")
                pool._shards[0].process.kill()
                wait_until(lambda: pool.restarts(0) == 1, timeout=60.0,
                           message="supervisor respawned the dead shard")
                wait_until(lambda: pool.live_count() == 2,
                           message="pool back to full strength")
                rounds_before = len(traffic.rounds)
                wait_until(lambda: len(traffic.rounds) >= rounds_before + 2,
                           message="post-respawn traffic flowing")
            assert traffic.errors == [], (
                f"client-visible failures during self-heal: {traffic.errors}")
            _assert_rounds_match(traffic.rounds, expected)
            stats = app.stats()
            assert stats.shards[0].restarts == 1
            assert not stats.shards[0].quarantined
            assert stats.shards[0].last_death_reason
            supervisor_stats = app.supervisor.stats()
            assert supervisor_stats["restarts_total"] >= 1
            assert not supervisor_stats["degraded"]
            recovery = supervisor_stats["time_to_full_strength_s"]
            assert recovery is not None and recovery > 0.0
            _record_supervisor_artifact("shard", supervisor_stats)

    def test_crash_loop_quarantined_and_publish_survives(self):
        """K deaths in the window: quarantine, report, keep publishing."""
        frames = _frames(2)
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        config = ServingConfig(sharding=ShardingConfig(num_shards=2),
                               supervisor=_supervisor(quarantine_deaths=2))
        with serve(ZOO_V1, config, in_dim=3, num_classes=3,
                   repository=repo) as app:
            pool = app.shard_pool
            pool._shards[0].process.kill()
            wait_until(lambda: pool.restarts(0) == 1, timeout=60.0,
                       message="first respawn of the crashing slot")
            pool._shards[0].process.kill()
            wait_until(lambda: pool.quarantine_reason(0) is not None,
                       timeout=60.0, message="slot quarantined")
            reason = pool.quarantine_reason(0)
            assert "crash loop" in reason
            # Quarantined means no further respawns: restarts stays put.
            assert pool.restarts(0) == 1
            assert pool.live_count() == 1
            # Publishes succeed against the surviving slot.
            repo.publish(ZOO_V2)
            assert pool.stats()[1].snapshot_version == repo.version
            expected = _reference_logits(ZOO_V2, "m", frames)
            with app.client(model="m", config=RETRIES) as client:
                results, _ = client.run(frames)
            for result, reference in zip(results, expected):
                np.testing.assert_allclose(result.arrays["logits"],
                                           reference, atol=1e-9)
            stats = app.stats()
            assert stats.shards[0].quarantined
            assert stats.shards[0].last_death_reason
            supervisor_stats = app.supervisor.stats()
            assert supervisor_stats["quarantined_total"] == 1
            assert supervisor_stats["slots"][0]["quarantined"] == reason


# ----------------------------------------------------------------------
# Cluster tier chaos: SIGKILL an app-owned node replica
# ----------------------------------------------------------------------
@pytest.mark.cluster
class TestNodeSelfHealing:
    def test_sigkill_node_under_traffic_self_heals(self):
        """Kill 1 of 2 owned replicas mid-stream: restart, rejoin, no loss."""
        frames = _frames(2)
        expected = _reference_logits(ZOO_V1, "m", frames)
        with NodeProcess(0) as first, NodeProcess(1) as second:
            config = ServingConfig(
                cluster=ClusterConfig(nodes=(first.address, second.address),
                                      heartbeat_ms=50.0, heartbeat_misses=2),
                supervisor=_supervisor())
            with serve(ZOO_V1, config, in_dim=3, num_classes=3,
                       node_processes=[first, second]) as app:
                pool = app.cluster_pool
                with _Traffic(app, frames) as traffic:
                    wait_until(lambda: len(traffic.rounds) >= 2,
                               message="pre-kill traffic flowing")
                    first.kill()
                    wait_until(lambda: pool.restarts(0) == 1, timeout=60.0,
                               message="supervisor respawned the node")
                    wait_until(lambda: pool.live_count() == 2,
                               message="fleet back to full strength")
                    rounds_before = len(traffic.rounds)
                    wait_until(
                        lambda: len(traffic.rounds) >= rounds_before + 2,
                        message="post-respawn traffic flowing")
                assert traffic.errors == [], (
                    f"client-visible failures during node self-heal: "
                    f"{traffic.errors}")
                _assert_rounds_match(traffic.rounds, expected)
                # The supervisor restarted the app-owned process in place,
                # rebinding the same configured address.
                assert first.alive()
                stats = app.stats()
                assert stats.nodes[0].restarts == 1
                assert not stats.nodes[0].quarantined
                supervisor_stats = app.supervisor.stats()
                assert supervisor_stats["restarts_total"] >= 1
                recovery = supervisor_stats["time_to_full_strength_s"]
                assert recovery is not None and recovery > 0.0
                _record_supervisor_artifact("node", supervisor_stats)

    def test_node_crash_loop_quarantined(self):
        frames = _frames(2)
        repo = ModelRepository(in_dim=3, num_classes=3, zoo=ZOO_V1)
        with NodeProcess(0) as first, NodeProcess(1) as second:
            config = ServingConfig(
                cluster=ClusterConfig(nodes=(first.address, second.address),
                                      heartbeat_ms=50.0, heartbeat_misses=2),
                supervisor=_supervisor(quarantine_deaths=2))
            with serve(ZOO_V1, config, in_dim=3, num_classes=3,
                       repository=repo,
                       node_processes=[first, second]) as app:
                pool = app.cluster_pool
                first.kill()
                wait_until(lambda: pool.restarts(0) == 1, timeout=60.0,
                           message="first respawn of the crashing node")
                first.kill()
                wait_until(lambda: pool.quarantine_reason(0) is not None,
                           timeout=60.0, message="node slot quarantined")
                assert "crash loop" in pool.quarantine_reason(0)
                assert pool.restarts(0) == 1
                # Publishes succeed against the surviving replica.
                repo.publish(ZOO_V2)
                assert pool.stats()[1].snapshot_version == repo.version
                expected = _reference_logits(ZOO_V2, "m", frames)
                with app.client(model="m", config=RETRIES) as client:
                    results, _ = client.run(frames)
                for result, reference in zip(results, expected):
                    np.testing.assert_allclose(result.arrays["logits"],
                                               reference, atol=1e-9)
                stats = app.stats()
                assert stats.nodes[0].quarantined
                assert stats.nodes[0].last_death_reason
                assert app.supervisor.stats()["quarantined_total"] == 1
