"""chaosnet: a deterministic fault-injection TCP proxy for serving tests.

Sits between two peers that speak the repo's length-prefixed wire framing
(``[>I length][payload]`` — the device/edge wire, the cluster router/node
wire) and injects transport faults *at frame granularity*, so a test can
say exactly which frame is dropped, delayed, truncated mid-frame,
duplicated or reordered — and assert the guarantee that must survive it.

Determinism rules
-----------------
* The proxy is **frame-aware**: it never splits or merges frames on its
  own, so a scripted fault applies to exactly one whole protocol message.
* Faults are **scripted one-shots** consumed in arrival order per
  direction (``client_to_server`` / ``server_to_client``): no randomness,
  no races between test and proxy.
* Delays are driven by an **injected clock**: with a :class:`ManualClock`
  a held frame is released when the *test* advances time, never by a
  wall-clock sleep — so a delay test runs in microseconds and cannot
  flake on a loaded CI box.

Failure modes
-------------
``drop_next``          swallow the next frame(s) silently.
``delay_next``         hold the next frame until the clock reaches
                       ``now + delay_s`` (frames behind it queue: the
                       proxy preserves per-direction ordering).
``truncate_next``      forward only a prefix of the next frame's bytes,
                       then sever both directions — the receiver must see
                       a mid-frame ``ConnectionError``, never a hang.
``duplicate_next``     forward the next frame twice (a retransmit bug /
                       at-least-once transport).
``reorder_next``       swap the next two frames.
``partition()``        silently drop *everything* in both directions while
                       active — connections stay open (unlike a crash,
                       nothing is reset) until :meth:`ChaosProxy.heal`.
``kill_links()``       abruptly close every live connection (a crash's
                       TCP signature) while the listener keeps accepting.
``flap(n, up, down)``  scripted partition/heal cycles on the injected
                       clock: ``n`` times, up for ``up`` seconds then
                       partitioned for ``down`` — the flaky-switch /
                       wobbly-WiFi signature, each transition released by
                       a test-driven ``ManualClock.advance``.

Typical use::

    proxy = ChaosProxy(node_host, node_port).start()
    config = ClusterConfig(nodes=(proxy.address,), ...)
    ...
    proxy.server_to_client.drop_next()   # lose one reply
    proxy.partition()                    # then cut the link entirely
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from collections import deque
from typing import Deque, List, Optional, Tuple

_PREFIX = ">I"
_PREFIX_SIZE = struct.calcsize(_PREFIX)
#: Wake quantum of clock waiters: only bounds how fast a stop request is
#: noticed — frame release times are governed purely by the clock value.
_WAIT_QUANTUM_S = 0.05


class ManualClock:
    """A clock that only moves when the test says so."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._cond = threading.Condition()

    def now(self) -> float:
        with self._cond:
            return self._now

    def advance(self, dt: float) -> float:
        """Move time forward and wake every waiter (never backwards)."""
        if dt < 0:
            raise ValueError(f"cannot advance by {dt}")
        with self._cond:
            self._now += float(dt)
            self._cond.notify_all()
            return self._now

    def wait_until(self, deadline: float, should_stop) -> None:
        """Block until ``now >= deadline`` or ``should_stop()``."""
        with self._cond:
            while self._now < deadline and not should_stop():
                self._cond.wait(timeout=_WAIT_QUANTUM_S)


class RealClock:
    """Wall-clock fallback for tests that do not script delays."""

    def now(self) -> float:
        return time.monotonic()

    def wait_until(self, deadline: float, should_stop) -> None:
        while time.monotonic() < deadline and not should_stop():
            time.sleep(min(_WAIT_QUANTUM_S,
                           max(deadline - time.monotonic(), 0.0)))


class _Truncate(Exception):
    """Internal: carries the byte prefix to emit before severing the link."""

    def __init__(self, prefix: bytes) -> None:
        super().__init__(f"truncate after {len(prefix)} bytes")
        self.prefix = prefix


class Direction:
    """Fault script + counters for one flow (client→server or back)."""

    def __init__(self, name: str, clock) -> None:
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._script: Deque[Tuple[str, object]] = deque()
        # Counters (under self._lock).
        self.frames_forwarded = 0
        self.frames_dropped = 0
        self._frames_held = 0

    # -- scripting (call from the test thread) --------------------------
    def drop_next(self, count: int = 1) -> None:
        with self._lock:
            self._script.extend([("drop", None)] * count)

    def delay_next(self, delay_s: float) -> None:
        with self._lock:
            self._script.append(("delay", float(delay_s)))

    def truncate_next(self, keep_bytes: int = 1) -> None:
        """Forward ``keep_bytes`` of the next frame's wire bytes, then cut."""
        with self._lock:
            self._script.append(("truncate", int(keep_bytes)))

    def duplicate_next(self) -> None:
        with self._lock:
            self._script.append(("duplicate", None))

    def reorder_next(self) -> None:
        """Swap the next two frames of this direction."""
        with self._lock:
            self._script.append(("reorder", None))

    def pending_faults(self) -> int:
        with self._lock:
            return len(self._script)

    def held_frames(self) -> int:
        """Frames currently parked by a ``delay_next`` fault.

        The release deadline is captured *before* the frame becomes
        visible here, so a test that waits for ``held_frames() == 1`` and
        then advances the clock is guaranteed to release it — advancing
        on a timer instead would race the pump thread's deadline capture.
        """
        with self._lock:
            return self._frames_held

    # -- application (called by a pump thread) --------------------------
    def _apply(self, frame: bytes, partitioned, should_stop) -> List[bytes]:
        """Turn one arriving frame into the frames actually forwarded."""
        if partitioned():
            with self._lock:
                self.frames_dropped += 1
            return []
        with self._lock:
            fault = self._script.popleft() if self._script else None
        if fault is None:
            out = [frame]
        else:
            kind, arg = fault
            if kind == "drop":
                with self._lock:
                    self.frames_dropped += 1
                return []
            if kind == "delay":
                # Deadline first, *then* publish the held state: once a
                # test observes held_frames() == 1 the deadline is fixed,
                # so advancing the clock past it reliably releases.
                deadline = self._clock.now() + arg
                with self._lock:
                    self._frames_held += 1
                try:
                    self._clock.wait_until(deadline, should_stop)
                finally:
                    with self._lock:
                        self._frames_held -= 1
                out = [frame]
            elif kind == "truncate":
                raise _Truncate(frame[:arg])
            elif kind == "duplicate":
                out = [frame, frame]
            elif kind == "reorder":
                with self._lock:
                    self._script.appendleft(("_reorder_with", frame))
                return []
            elif kind == "_reorder_with":
                out = [frame, arg]
            else:  # pragma: no cover - script is built by the methods above
                raise AssertionError(f"unknown fault {kind!r}")
        with self._lock:
            self.frames_forwarded += len(out)
        return out


class _Link:
    """One proxied connection: a client socket, a server socket, two pumps."""

    def __init__(self, proxy: "ChaosProxy", client: socket.socket,
                 server: socket.socket) -> None:
        self.proxy = proxy
        self.client = client
        self.server = server
        self._closed = threading.Event()
        self.threads = [
            threading.Thread(
                target=self._pump, name="chaosnet-c2s", daemon=True,
                args=(client, server, proxy.client_to_server)),
            threading.Thread(
                target=self._pump, name="chaosnet-s2c", daemon=True,
                args=(server, client, proxy.server_to_client)),
        ]
        for thread in self.threads:
            thread.start()

    def _recv_exact(self, sock: socket.socket, size: int) -> Optional[bytes]:
        chunks, received = [], 0
        while received < size:
            try:
                chunk = sock.recv(size - received)
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            received += len(chunk)
        return b"".join(chunks)

    def _pump(self, source: socket.socket, sink: socket.socket,
              direction: Direction) -> None:
        should_stop = self._closed.is_set
        while not self._closed.is_set():
            prefix = self._recv_exact(source, _PREFIX_SIZE)
            if prefix is None:
                break
            (length,) = struct.unpack(_PREFIX, prefix)
            payload = self._recv_exact(source, length)
            if payload is None:
                break
            try:
                frames = direction._apply(prefix + payload,
                                          self.proxy._partitioned.is_set,
                                          should_stop)
            except _Truncate as fault:
                try:
                    sink.sendall(fault.prefix)
                except OSError:
                    pass
                break
            try:
                for frame in frames:
                    sink.sendall(frame)
            except OSError:
                break
        self.close()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        for sock in (self.client, self.server):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """Frame-aware TCP proxy between a client and ``host:port``.

    ``start()`` binds an ephemeral listening port; point the client at
    :attr:`address` instead of the real server.  Faults are scripted on
    :attr:`client_to_server` / :attr:`server_to_client`; fleet-level modes
    (:meth:`partition`, :meth:`kill_links`) apply to every live link.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 clock=None) -> None:
        self.upstream = (upstream_host, int(upstream_port))
        self.clock = clock if clock is not None else RealClock()
        self.client_to_server = Direction("client_to_server", self.clock)
        self.server_to_client = Direction("server_to_client", self.clock)
        self._partitioned = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._links: List[_Link] = []
        self._links_lock = threading.Lock()
        self._stopped = threading.Event()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        #: Completed partition/heal cycles of the current/last :meth:`flap`
        #: schedule (single writer: the flap driver thread).
        self.flaps_completed = 0
        self._flap_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.host, self.port = listener.getsockname()
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               name="chaosnet-accept",
                                               daemon=True)
        self._accept_thread.start()
        return self

    @property
    def address(self) -> str:
        if self.port is None:
            raise RuntimeError("proxy not started")
        return f"{self.host}:{self.port}"

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                server = socket.create_connection(self.upstream, timeout=10.0)
            except OSError:
                client.close()
                continue
            # The connect timeout must not linger: an idle upstream (e.g.
            # while a delayed frame is held) would otherwise "time out" the
            # pump's recv and silently kill the link mid-test.
            server.settimeout(None)
            for sock in (client, server):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._links_lock:
                self._links.append(_Link(self, client, server))

    def stop(self) -> None:
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.kill_links()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._flap_thread is not None:
            self._flap_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self if self._listener is not None else self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- fleet-level failure modes --------------------------------------
    def partition(self) -> None:
        """Silently drop every frame in both directions until :meth:`heal`."""
        self._partitioned.set()

    def heal(self) -> None:
        self._partitioned.clear()

    @property
    def partitioned(self) -> bool:
        return self._partitioned.is_set()

    def flap(self, cycles: int, up_s: float, down_s: float
             ) -> threading.Thread:
        """Scripted partition/heal cycles: the flaky-link signature.

        Each cycle keeps the link up for ``up_s`` seconds, then partitioned
        for ``down_s``; after the last cycle the link is healed again.  The
        schedule runs on the proxy's injected clock, so with a
        :class:`ManualClock` every transition is released by a test-driven
        ``advance()`` — nothing depends on wall time.  Progress is
        observable via :attr:`flaps_completed` (and :attr:`partitioned`
        mid-cycle); the returned driver thread can be joined once the
        clock has been advanced past the whole schedule.
        """
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        if up_s < 0 or down_s < 0:
            raise ValueError(f"up_s/down_s must be >= 0, got "
                             f"{up_s}/{down_s}")
        if self._flap_thread is not None and self._flap_thread.is_alive():
            raise RuntimeError("a flap schedule is already running")
        # The whole schedule is fixed in *absolute* clock time now, before
        # the driver thread starts: a test may advance() immediately after
        # this call without racing the thread's first clock read.
        deadlines = []
        t = self.clock.now()
        for _ in range(cycles):
            t += up_s
            down_at = t
            t += down_s
            deadlines.append((down_at, t))

        def drive() -> None:
            should_stop = self._stopped.is_set
            for down_at, up_at in deadlines:
                self.clock.wait_until(down_at, should_stop)
                if should_stop():
                    return
                self.partition()
                self.clock.wait_until(up_at, should_stop)
                # Heal even on a stop request: a stopping proxy must not
                # leave the fleet-level partition flag latched for a later
                # assertion on proxy state.
                self.heal()
                if should_stop():
                    return
                self.flaps_completed += 1

        self.flaps_completed = 0
        self._flap_thread = threading.Thread(target=drive,
                                             name="chaosnet-flap",
                                             daemon=True)
        self._flap_thread.start()
        return self._flap_thread

    def kill_links(self) -> None:
        """Abruptly close every live connection (a crash's TCP signature)."""
        with self._links_lock:
            links, self._links = self._links, []
        for link in links:
            link.close()

    def live_links(self) -> int:
        with self._links_lock:
            self._links = [link for link in self._links
                           if not link._closed.is_set()]
            return len(self._links)
