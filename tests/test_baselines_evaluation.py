"""Tests for the baseline methods and the evaluation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (BranchyConfig, HGNAS, HGNASConfig, PNAS, PNASConfig,
                             branchy_architecture, branchy_candidates,
                             device_latency_ms, dgcnn_architecture,
                             hgnas_with_partition, li_optimized_architecture,
                             pnas_architecture, pnas_with_partition,
                             single_device_space, text_gnn_architecture)
from repro.core import Architecture
from repro.evaluation import (MethodResult, dominates, energy_reduction,
                              format_breakdown, format_series, format_table,
                              fps, hypervolume, paper_feature_table, pareto_front,
                              speedup, format_architecture)
from repro.gnn import OpType
from repro.hardware import (DataProfile, JETSON_TX2, RASPBERRY_PI_4B, INTEL_I7,
                            NVIDIA_1060, LINK_40MBPS)
from repro.system import CoInferenceSimulator, SystemConfig


@pytest.fixture
def profile():
    return DataProfile.modelnet40(num_points=128, num_classes=10)


@pytest.fixture
def simulator():
    return CoInferenceSimulator(SystemConfig(RASPBERRY_PI_4B, NVIDIA_1060,
                                             LINK_40MBPS))


def proxy_accuracy(arch: Architecture):
    score = 0.6 + 0.02 * sum(1 for op in arch.ops if op.op == OpType.COMBINE)
    return min(score, 0.95), min(score, 0.95)


class TestFixedBaselines:
    def test_dgcnn_and_li_are_device_only(self):
        for arch in (dgcnn_architecture(), li_optimized_architecture()):
            assert not arch.is_co_inference
            assert arch.ops[-1].op == OpType.GLOBAL_POOL

    def test_li_is_cheaper_than_dgcnn(self, simulator, profile):
        dgcnn = simulator.evaluate_device_only(dgcnn_architecture().ops, profile)
        li = simulator.evaluate_device_only(li_optimized_architecture().ops, profile)
        assert li.latency_ms < dgcnn.latency_ms

    def test_text_and_pnas_architectures_valid_for_mr(self):
        from repro.core import is_valid
        for arch in (text_gnn_architecture(), pnas_architecture()):
            assert is_valid(arch, requires_sample=False)


class TestHGNAS:
    def test_single_device_space_has_no_communicate(self, profile):
        space = single_device_space(profile, num_layers=5)
        assert OpType.COMMUNICATE not in space.op_choices
        rng = np.random.default_rng(0)
        assert all(not space.sample_valid(rng).is_co_inference for _ in range(5))

    def test_search_returns_device_only_architecture(self, profile):
        hgnas = HGNAS(profile, JETSON_TX2, proxy_accuracy,
                      HGNASConfig(max_trials=30, num_layers=5, seed=0))
        result = hgnas.search()
        assert not result.architecture.is_co_inference
        assert result.device_latency_ms > 0
        assert result.architecture.name == "hgnas"

    def test_hardware_awareness_prefers_faster_designs(self, profile):
        fast_biased = HGNAS(profile, RASPBERRY_PI_4B, proxy_accuracy,
                            HGNASConfig(max_trials=40, tradeoff_lambda=5.0, seed=1))
        slow_biased = HGNAS(profile, RASPBERRY_PI_4B, proxy_accuracy,
                            HGNASConfig(max_trials=40, tradeoff_lambda=0.0, seed=1))
        assert fast_biased.search().device_latency_ms <= \
            slow_biased.search().device_latency_ms

    def test_partition_adds_exactly_one_communicate(self, simulator, profile):
        hgnas = HGNAS(profile, RASPBERRY_PI_4B, proxy_accuracy,
                      HGNASConfig(max_trials=20, num_layers=5, seed=2))
        result = hgnas.search()
        partitioned = hgnas_with_partition(result, simulator, profile)
        assert partitioned.num_communicates == 1
        assert partitioned.name == "hgnas+partition"

    def test_partitioned_is_no_slower_than_device_only(self, simulator, profile):
        hgnas = HGNAS(profile, RASPBERRY_PI_4B, proxy_accuracy,
                      HGNASConfig(max_trials=20, num_layers=5, seed=3))
        result = hgnas.search()
        partitioned = hgnas_with_partition(result, simulator, profile)
        device_only = simulator.evaluate_device_only(result.architecture.ops, profile)
        co = simulator.evaluate(partitioned.ops, profile)
        assert co.latency_ms <= device_only.latency_ms + simulator.runtime_overhead_ms

    def test_device_latency_ignores_communicates(self, profile):
        arch = dgcnn_architecture()
        assert device_latency_ms(arch, JETSON_TX2, profile) > 0


class TestBranchy:
    def test_candidates_have_bottleneck_before_communicate(self):
        for candidate in branchy_candidates(BranchyConfig(bottleneck_dim=16)):
            ops = candidate.ops
            comm_positions = [i for i, op in enumerate(ops)
                              if op.op == OpType.COMMUNICATE]
            assert len(comm_positions) == 1
            before = ops[comm_positions[0] - 1]
            assert before.op == OpType.COMBINE and before.function == 16

    def test_best_candidate_selected_by_latency(self, simulator, profile):
        best = branchy_architecture(simulator, profile)
        latencies = [simulator.evaluate(c.ops, profile).latency_ms
                     for c in branchy_candidates()]
        assert simulator.evaluate(best.ops, profile).latency_ms == pytest.approx(
            min(latencies))
        assert best.name == "branchy"


class TestPNAS:
    def test_search_maximizes_accuracy_only(self):
        profile = DataProfile.mr(num_words=12, feature_dim=32)
        pnas = PNAS(profile, proxy_accuracy, PNASConfig(max_trials=30, seed=0))
        arch = pnas.search()
        assert not arch.is_co_inference
        assert arch.name == "pnas"

    def test_partition_variant(self, profile):
        simulator = CoInferenceSimulator(SystemConfig(JETSON_TX2, INTEL_I7,
                                                      LINK_40MBPS))
        partitioned = pnas_with_partition(pnas_architecture(), simulator,
                                          DataProfile.mr(num_words=12,
                                                         feature_dim=32))
        assert partitioned.num_communicates == 1


class TestEvaluationHelpers:
    def test_speedup_and_energy_reduction(self):
        assert speedup(100.0, 25.0) == pytest.approx(4.0)
        assert energy_reduction(2.0, 0.2) == pytest.approx(0.9)
        assert fps(50.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)

    def test_method_result_relative(self):
        reference = MethodResult("dgcnn", "D", 0.92, 0.89, 240.0, 2.6)
        ours = MethodResult("gcode", "Co", 0.92, 0.89, 30.0, 0.3)
        relative = ours.relative_to(reference)
        assert relative["speedup"] == pytest.approx(8.0)
        assert relative["energy_reduction"] == pytest.approx(1 - 0.3 / 2.6)

    def test_pareto_front_extraction(self):
        points = [(10.0, 0.90), (20.0, 0.95), (15.0, 0.85), (5.0, 0.80),
                  (20.0, 0.90)]
        front = pareto_front(points)
        assert (15.0, 0.85) not in front
        assert (20.0, 0.90) not in front
        assert {(5.0, 0.80), (10.0, 0.90), (20.0, 0.95)} == set(front)

    def test_dominates(self):
        assert dominates((10.0, 0.9), (20.0, 0.8))
        assert not dominates((10.0, 0.9), (10.0, 0.9))

    def test_hypervolume_increases_with_better_front(self):
        reference = (100.0, 0.5)
        weak = [(80.0, 0.7)]
        strong = [(20.0, 0.9), (80.0, 0.7)]
        assert hypervolume(strong, reference) > hypervolume(weak, reference)
        assert hypervolume([], reference) == 0.0

    def test_format_table_alignment_and_floats(self):
        text = format_table(["a", "bb"], [[1.23456, "x"], [2.0, "yy"]],
                            title="demo", float_format="{:.2f}")
        assert "demo" in text and "1.23" in text
        lines = text.splitlines()
        assert len(lines) == 5
        assert len(lines[1]) == len(lines[3])

    def test_format_series_and_breakdown(self):
        series = format_series("latency", [1, 2], [3.0, 4.0])
        assert "latency" in series and "->" in series
        breakdown = format_breakdown("ops", {"knn": 3.0, "combine": 1.0})
        assert "75.0%" in breakdown
        listing = format_architecture(["device | sample"], title="Fig11")
        assert listing.startswith("Fig11")

    def test_paper_feature_table_mentions_all_methods(self):
        table = paper_feature_table()
        for name in ("GCoDE", "HGNAS", "MaGNAS", "BRANCHY"):
            assert name in table
