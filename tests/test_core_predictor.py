"""Tests for graph abstraction, feature building, cost estimation and the GIN predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (Architecture, CostEstimator, FeatureBuilder,
                        LatencyPredictor, PredictorTrainer,
                        abstract_architecture, error_bound_accuracy,
                        generate_predictor_dataset, measure_architectures,
                        ranking_accuracy, split_samples)
from repro.core.design_space import DesignSpace
from repro.core.predictor.gin_predictor import PredictorSample
from repro.gnn import OpSpec, OpType
from repro.hardware import (DataProfile, JETSON_TX2, INTEL_I7, LINK_40MBPS,
                            build_latency_lut)
from repro.system import CoInferenceSimulator, SystemConfig


SAMPLE = OpSpec(OpType.SAMPLE, "knn", k=4)
AGG = OpSpec(OpType.AGGREGATE, "max")
COMBINE = OpSpec(OpType.COMBINE, 32)
POOL = OpSpec(OpType.GLOBAL_POOL, "mean")
COMM = OpSpec(OpType.COMMUNICATE, "uplink")


@pytest.fixture
def profile():
    return DataProfile.modelnet40(num_points=128, num_classes=10)


@pytest.fixture
def space(profile):
    return DesignSpace(num_layers=5, profile=profile, combine_widths=(16, 32, 64),
                       k_choices=(4, 8))


@pytest.fixture
def simulator():
    return CoInferenceSimulator(SystemConfig(JETSON_TX2, INTEL_I7, LINK_40MBPS))


@pytest.fixture
def builder(profile):
    return FeatureBuilder(build_latency_lut(JETSON_TX2, profile),
                          build_latency_lut(INTEL_I7, profile),
                          LINK_40MBPS, profile, mode="enhanced")


class TestGraphAbstraction:
    def test_node_count_includes_bookends_and_global_node(self):
        arch = Architecture(ops=(SAMPLE, AGG, COMBINE, POOL))
        graph = abstract_architecture(arch)
        # input + 4 ops + classifier + global node
        assert graph.num_nodes == 7
        assert graph.node_types[0] == OpType.INPUT
        assert graph.node_types[-1] == "global"

    def test_edges_contain_sequence_selfloops_and_global(self):
        arch = Architecture(ops=(SAMPLE, POOL, COMBINE))
        graph = abstract_architecture(arch)
        edges = set(map(tuple, graph.edge_index.T))
        assert (0, 1) in edges and (1, 2) in edges     # data flow
        assert (0, 0) in edges                          # self loop
        global_idx = graph.num_nodes - 1
        assert (0, global_idx) in edges and (global_idx, 0) in edges

    def test_disable_global_node(self):
        arch = Architecture(ops=(SAMPLE, POOL, COMBINE))
        graph = abstract_architecture(arch, add_global_node=False)
        assert "global" not in graph.node_types

    def test_one_hot_rows_sum_to_one(self):
        arch = Architecture(ops=(SAMPLE, AGG, COMBINE, POOL))
        encoding = abstract_architecture(arch).one_hot()
        np.testing.assert_allclose(encoding.sum(axis=1), 1.0)


class TestFeatureBuilder:
    def test_enhanced_features_have_extra_column(self, builder, profile):
        arch = Architecture(ops=(SAMPLE, AGG, COMM, COMBINE, POOL))
        features, edge_index = builder.build(arch)
        assert features.shape[1] == builder.feature_dim
        assert features.shape[0] == len(arch.ops) + 3
        assert edge_index.shape[0] == 2

    def test_one_hot_mode_has_no_latency_column(self, builder, profile):
        one_hot_builder = FeatureBuilder(build_latency_lut(JETSON_TX2, profile),
                                         build_latency_lut(INTEL_I7, profile),
                                         LINK_40MBPS, profile, mode="one-hot")
        arch = Architecture(ops=(SAMPLE, AGG, COMBINE, POOL))
        features, _ = one_hot_builder.build(arch)
        assert features.shape[1] == one_hot_builder.feature_dim
        assert one_hot_builder.feature_dim == builder.feature_dim - 1

    def test_invalid_mode_rejected(self, profile):
        with pytest.raises(ValueError):
            FeatureBuilder(build_latency_lut(JETSON_TX2, profile),
                           build_latency_lut(INTEL_I7, profile),
                           LINK_40MBPS, profile, mode="embedding")

    def test_mapping_changes_latency_features(self, builder):
        """The same op mapped to device vs edge should get different latency values."""
        on_device = Architecture(ops=(SAMPLE, AGG, COMBINE, POOL, COMM))
        on_edge = Architecture(ops=(COMM, SAMPLE, AGG, COMBINE, POOL))
        f_device, _ = builder.build(on_device)
        f_edge, _ = builder.build(on_edge)
        # Compare the latency column of the Sample node (node index 1 / 2).
        assert not np.allclose(f_device[1, -1], f_edge[2, -1])


class TestCostEstimator:
    def test_estimate_splits_by_side(self, simulator, profile):
        estimator = CostEstimator.for_system(JETSON_TX2, INTEL_I7, LINK_40MBPS,
                                             profile)
        arch = Architecture(ops=(SAMPLE, AGG, COMM, COMBINE, POOL))
        estimate = estimator.estimate(arch)
        assert estimate.device_ms > 0 and estimate.edge_ms > 0 and estimate.comm_ms > 0
        assert estimate.total_ms == pytest.approx(
            estimate.device_ms + estimate.edge_ms + estimate.comm_ms)

    def test_estimate_underestimates_measurement_but_correlates(self, simulator,
                                                                space, profile):
        """The LUT estimate ignores runtime overheads yet ranks like the simulator."""
        estimator = CostEstimator.for_system(JETSON_TX2, INTEL_I7, LINK_40MBPS,
                                             profile)
        rng = np.random.default_rng(0)
        archs = [space.sample_valid(rng) for _ in range(20)]
        estimates = np.array([estimator.estimate_latency_ms(a) for a in archs])
        measured = np.array([simulator.evaluate(a.ops, profile).latency_ms
                             for a in archs])
        assert (estimates <= measured + 1e-6).all()
        assert ranking_accuracy(estimates, measured) > 0.8

    def test_device_only_architecture_has_no_comm_cost(self, profile):
        estimator = CostEstimator.for_system(JETSON_TX2, INTEL_I7, LINK_40MBPS,
                                             profile)
        estimate = estimator.estimate(Architecture(ops=(SAMPLE, AGG, COMBINE, POOL)))
        assert estimate.comm_ms == 0.0 and estimate.edge_ms == 0.0


class TestPredictorMetrics:
    def test_error_bound_accuracy(self):
        predicted = np.array([100.0, 95.0, 200.0])
        measured = np.array([100.0, 100.0, 100.0])
        assert error_bound_accuracy(predicted, measured, 0.10) == pytest.approx(2 / 3)

    def test_error_bound_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_bound_accuracy(np.ones(3), np.ones(4))

    def test_ranking_accuracy_perfect_and_inverted(self):
        measured = np.array([1.0, 2.0, 3.0, 4.0])
        assert ranking_accuracy(measured, measured) == 1.0
        assert ranking_accuracy(-measured, measured) == 0.0

    def test_ranking_accuracy_skips_ties(self):
        assert ranking_accuracy(np.array([1.0, 2.0]), np.array([5.0, 5.0])) == 0.0


class TestPredictorTraining:
    def test_dataset_generation_and_split(self, space, simulator, builder):
        samples = generate_predictor_dataset(space, simulator, builder,
                                             num_samples=30, seed=0)
        assert len(samples) == 30
        assert all(s.latency_ms > 0 for s in samples)
        train, val = split_samples(samples, 0.7, seed=0)
        assert len(train) + len(val) == 30 and len(train) > len(val)

    def test_measure_architectures_with_noise_is_positive(self, space, simulator,
                                                          profile):
        rng = np.random.default_rng(0)
        archs = [space.sample_valid(rng) for _ in range(5)]
        labelled = measure_architectures(archs, simulator, profile, noise_std=0.5,
                                         seed=1)
        assert all(entry.latency_ms > 0 for entry in labelled)

    def test_gin_predictor_learns_ranking(self, space, simulator, builder):
        """After brief training the predictor should rank far better than chance."""
        samples = generate_predictor_dataset(space, simulator, builder,
                                             num_samples=60, noise_std=0.0, seed=0)
        train, val = split_samples(samples, 0.7, seed=0)
        predictor = LatencyPredictor(builder.feature_dim, hidden_dim=32, seed=0)
        trainer = PredictorTrainer(predictor, lr=2e-3)
        history = trainer.fit(train, epochs=12, seed=0)
        assert history[-1] < history[0]
        predictions = trainer.predict_many(val)
        measured = np.array([s.latency_ms for s in val])
        assert ranking_accuracy(predictions, measured) > 0.7

    def test_gcn_variant_builds_and_predicts(self, builder, space, simulator):
        samples = generate_predictor_dataset(space, simulator, builder,
                                             num_samples=10, seed=1)
        predictor = LatencyPredictor(builder.feature_dim, hidden_dim=16,
                                     layer_type="gcn", seed=0)
        trainer = PredictorTrainer(predictor)
        trainer.fit(samples, epochs=2, seed=0)
        assert trainer.predict(samples[0]) > 0

    def test_invalid_layer_type_rejected(self, builder):
        with pytest.raises(ValueError):
            LatencyPredictor(builder.feature_dim, layer_type="transformer")

    def test_empty_training_set_rejected(self, builder):
        predictor = LatencyPredictor(builder.feature_dim, hidden_dim=8)
        with pytest.raises(ValueError):
            PredictorTrainer(predictor).fit([], epochs=1)
