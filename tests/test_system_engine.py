"""Tests for the wire format and the socket-based co-inference engine."""

from __future__ import annotations

import socket
import struct
import time

import numpy as np
import pytest

from repro.system import (Message, compressed_size, deserialize_message,
                          run_co_inference, serialize_message)
from repro.system.engine import EdgeServer, DeviceClient
from repro.system.messages import recv_message, serialize_message as _serialize


class TestMessages:
    def test_roundtrip_preserves_arrays_and_meta(self):
        rng = np.random.default_rng(0)
        message = Message(kind="frame", frame_id=7,
                          arrays={"x": rng.standard_normal((5, 3)),
                                  "batch": np.arange(5)},
                          meta={"pooled": False, "num_graphs": 1})
        restored = deserialize_message(serialize_message(message))
        assert restored.kind == "frame" and restored.frame_id == 7
        assert restored.meta == message.meta
        np.testing.assert_allclose(restored.arrays["x"], message.arrays["x"])
        np.testing.assert_array_equal(restored.arrays["batch"], message.arrays["batch"])

    def test_integer_dtype_survives_roundtrip(self):
        message = Message(kind="frame", arrays={"edge_index": np.array([[0, 1], [1, 2]])})
        restored = deserialize_message(serialize_message(message))
        assert restored.arrays["edge_index"].dtype.kind == "i"

    def test_compression_shrinks_redundant_data(self):
        redundant = {"x": np.zeros((256, 64))}
        assert compressed_size(redundant) < redundant["x"].nbytes / 10

    def test_empty_message(self):
        restored = deserialize_message(serialize_message(Message(kind="stop")))
        assert restored.kind == "stop" and restored.arrays == {}


class TestTruncation:
    """A mid-frame peer death must raise, never masquerade as a clean close."""

    @staticmethod
    def _frame_bytes() -> bytes:
        blob = _serialize(Message(kind="frame", frame_id=1,
                                  arrays={"x": np.ones((16, 16))}))
        return struct.pack(">I", len(blob)) + blob

    def test_clean_close_returns_none(self):
        writer, reader = socket.socketpair()
        writer.close()
        try:
            assert recv_message(reader) is None
        finally:
            reader.close()

    def test_truncated_payload_raises(self):
        writer, reader = socket.socketpair()
        wire = self._frame_bytes()
        writer.sendall(wire[:len(wire) // 2])
        writer.close()
        try:
            with pytest.raises(ConnectionError, match="mid-frame"):
                recv_message(reader)
        finally:
            reader.close()

    def test_missing_payload_raises(self):
        writer, reader = socket.socketpair()
        writer.sendall(self._frame_bytes()[:4])  # full prefix, no payload
        writer.close()
        try:
            with pytest.raises(ConnectionError, match="mid-frame"):
                recv_message(reader)
        finally:
            reader.close()

    def test_truncated_length_prefix_raises(self):
        writer, reader = socket.socketpair()
        writer.sendall(self._frame_bytes()[:2])  # half a length prefix
        writer.close()
        try:
            with pytest.raises(ConnectionError, match="mid-frame"):
                recv_message(reader)
        finally:
            reader.close()

    def test_full_frame_still_decodes(self):
        writer, reader = socket.socketpair()
        writer.sendall(self._frame_bytes())
        writer.close()
        try:
            message = recv_message(reader)
            assert message is not None and message.frame_id == 1
            assert recv_message(reader) is None  # then a clean close
        finally:
            reader.close()


class TestEngine:
    @staticmethod
    def _device_fn(frame):
        return {"x": np.asarray(frame, dtype=np.float64)}, {"scale": 2.0}

    @staticmethod
    def _edge_fn(arrays, meta):
        return {"y": arrays["x"] * meta["scale"]}, {"done": True}

    def test_run_co_inference_roundtrip(self):
        frames = [np.full((4, 2), i, dtype=float) for i in range(5)]
        results, stats = run_co_inference(frames, self._device_fn, self._edge_fn)
        assert len(results) == 5
        for i, result in enumerate(results):
            assert result.frame_id == i
            np.testing.assert_allclose(result.arrays["y"], frames[i] * 2.0)
            assert result.meta == {"done": True}
        assert stats.num_frames == 5 and stats.throughput_fps > 0
        assert stats.bytes_sent > 0 and stats.bytes_received > 0

    def test_results_sorted_by_frame_id(self):
        frames = [np.array([[float(i)]]) for i in range(8)]
        results, _ = run_co_inference(frames, self._device_fn, self._edge_fn)
        assert [r.frame_id for r in results] == list(range(8))

    def test_edge_server_counts_frames(self):
        server = EdgeServer(self._edge_fn).start()
        client = DeviceClient(server.host, server.port)
        try:
            client.run_pipeline([np.ones((2, 2))] * 3, self._device_fn)
        finally:
            client.close()
            server.stop()
        assert server.frames_processed == 3

    def test_latencies_are_positive(self):
        frames = [np.ones((3, 3))] * 4
        results, stats = run_co_inference(frames, self._device_fn, self._edge_fn)
        assert all(r.latency_s >= 0 for r in results)
        assert stats.mean_latency_s >= 0

    def test_latency_includes_device_compute(self):
        """Frame latency must cover the device segment, not just link + edge."""
        device_delay_s = 0.03

        def slow_device_fn(frame):
            time.sleep(device_delay_s)
            return self._device_fn(frame)

        frames = [np.ones((2, 2))] * 3
        results, stats = run_co_inference(frames, slow_device_fn, self._edge_fn)
        assert all(r.latency_s >= device_delay_s for r in results)
        assert stats.mean_latency_s >= device_delay_s

    def test_engine_with_architecture_model(self, tiny_modelnet, modelnet_profile):
        """End-to-end: a split ArchitectureModel served through the engine."""
        from repro.core import Architecture, ArchitectureModel, split_callables
        from repro.gnn import OpSpec, OpType
        from repro.graph.data import Batch

        arch = Architecture(ops=(
            OpSpec(OpType.SAMPLE, "knn", k=4),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.COMMUNICATE, "uplink"),
            OpSpec(OpType.COMBINE, 16),
            OpSpec(OpType.GLOBAL_POOL, "mean"),
        ))
        model = ArchitectureModel(arch, in_dim=modelnet_profile.feature_dim,
                                  num_classes=modelnet_profile.num_classes, seed=0)
        device_fn, edge_fn = split_callables(model)
        frames = [Batch.from_graphs([g]) for g in tiny_modelnet.test[:3]]
        results, stats = run_co_inference(frames, device_fn, edge_fn)
        assert len(results) == 3
        for result in results:
            assert result.arrays["logits"].shape == (1, modelnet_profile.num_classes)
        # The engine output must match a local (non-split) forward pass.
        local = model(frames[0]).data
        np.testing.assert_allclose(results[0].arrays["logits"], local, atol=1e-8)
