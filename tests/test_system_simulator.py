"""Tests for the co-inference simulator and the partitioning utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import OpSpec, OpType
from repro.gnn.models import dgcnn_opspecs
from repro.hardware import (DataProfile, JETSON_TX2, INTEL_I7, NVIDIA_1060,
                            RASPBERRY_PI_4B, LINK_10MBPS, LINK_40MBPS)
from repro.system import (CoInferenceSimulator, SystemConfig, best_partition,
                          candidate_partitions, evaluate_partitions,
                          insert_partition, make_system)


def small_ops(width=32, k=4):
    return [OpSpec(OpType.SAMPLE, "knn", k=k),
            OpSpec(OpType.AGGREGATE, "max"),
            OpSpec(OpType.COMBINE, width),
            OpSpec(OpType.GLOBAL_POOL, "mean")]


@pytest.fixture
def profile():
    return DataProfile.modelnet40(num_points=128, num_classes=10)


@pytest.fixture
def simulator():
    return CoInferenceSimulator(SystemConfig(JETSON_TX2, INTEL_I7, LINK_40MBPS))


class TestSimulator:
    def test_device_only_has_no_communication(self, simulator, profile):
        perf = simulator.evaluate_device_only(small_ops(), profile)
        assert perf.comm_ms == 0.0 and perf.uploaded_bytes == 0.0
        assert perf.edge_busy_ms == 0.0
        assert perf.latency_ms > perf.device_busy_ms  # runtime overhead added

    def test_edge_only_uploads_input(self, simulator, profile):
        perf = simulator.evaluate_edge_only(small_ops(), profile)
        assert perf.uploaded_bytes == pytest.approx(128 * 3 * 4)
        assert perf.device_busy_ms == 0.0 and perf.edge_busy_ms > 0

    def test_co_inference_splits_busy_time(self, simulator, profile):
        ops = small_ops()
        ops.insert(2, OpSpec(OpType.COMMUNICATE, "uplink"))
        perf = simulator.evaluate(ops, profile)
        assert perf.device_busy_ms > 0 and perf.edge_busy_ms > 0
        assert perf.comm_ms > 0 and perf.uploaded_bytes > 0
        # Result produced on the edge returns to the device.
        assert perf.downloaded_bytes > 0

    def test_latency_is_sum_of_components(self, simulator, profile):
        ops = small_ops()
        ops.insert(2, OpSpec(OpType.COMMUNICATE, "uplink"))
        perf = simulator.evaluate(ops, profile)
        expected = (perf.device_busy_ms + perf.edge_busy_ms + perf.comm_ms
                    + simulator.runtime_overhead_ms * 2)
        assert perf.latency_ms == pytest.approx(expected)

    def test_worse_network_slows_co_inference_only(self, profile):
        ops = small_ops()
        ops.insert(1, OpSpec(OpType.COMMUNICATE, "uplink"))
        fast = CoInferenceSimulator(SystemConfig(JETSON_TX2, INTEL_I7, LINK_40MBPS))
        slow = CoInferenceSimulator(SystemConfig(JETSON_TX2, INTEL_I7, LINK_10MBPS))
        assert slow.evaluate(ops, profile).latency_ms > \
            fast.evaluate(ops, profile).latency_ms
        assert slow.evaluate_device_only(ops, profile).latency_ms == pytest.approx(
            fast.evaluate_device_only(ops, profile).latency_ms)

    def test_pipelined_fps_exceeds_sequential_for_balanced_split(self, profile):
        ops = dgcnn_opspecs(k=8)
        ops.insert(6, OpSpec(OpType.COMMUNICATE, "uplink"))
        simulator = CoInferenceSimulator(SystemConfig(JETSON_TX2, NVIDIA_1060,
                                                      LINK_40MBPS))
        perf = simulator.evaluate(ops, profile)
        assert perf.pipelined_fps > perf.fps

    def test_energy_lower_when_offloading_from_weak_device(self, profile):
        ops = dgcnn_opspecs(k=8)
        simulator = CoInferenceSimulator(SystemConfig(RASPBERRY_PI_4B, NVIDIA_1060,
                                                      LINK_40MBPS))
        device_only = simulator.evaluate_device_only(ops, profile)
        edge_only = simulator.evaluate_edge_only(ops, profile)
        assert edge_only.device_energy_j < device_only.device_energy_j

    def test_timeline_covers_all_operations(self, simulator, profile):
        ops = small_ops()
        perf = simulator.evaluate(ops, profile)
        # ops + classifier entries (no communicates in this architecture)
        assert len(perf.timeline) == len(ops) + 1

    def test_profile_operations_excludes_communicate(self, simulator, profile):
        ops = small_ops()
        ops.insert(2, OpSpec(OpType.COMMUNICATE, "uplink"))
        rows = simulator.profile_operations(ops, profile)
        assert len(rows) == len(ops)  # communicate dropped, classifier added
        assert all(latency > 0 for _, latency, _ in rows)

    def test_invalid_initial_side_rejected(self, simulator, profile):
        with pytest.raises(ValueError):
            simulator.evaluate(small_ops(), profile, initial_side="cloud")

    def test_summary_keys(self, simulator, profile):
        summary = simulator.evaluate(small_ops(), profile).summary()
        assert {"latency_ms", "device_energy_j", "fps", "pipelined_fps"} <= set(summary)

    def test_make_system_accepts_bandwidth_number(self):
        system = make_system(JETSON_TX2, INTEL_I7, 25)
        assert system.link.bandwidth_mbps == 25
        assert "25" in system.name


class TestPartitioning:
    def test_insert_partition_positions(self):
        ops = small_ops()
        partitioned = insert_partition(ops, 1)
        assert partitioned[2].op == OpType.COMMUNICATE
        assert len(partitioned) == len(ops) + 1
        edge_first = insert_partition(ops, -1)
        assert edge_first[0].op == OpType.COMMUNICATE

    def test_insert_partition_range_check(self):
        with pytest.raises(ValueError):
            insert_partition(small_ops(), 10)

    def test_candidate_partitions_count(self):
        assert len(candidate_partitions(small_ops())) == len(small_ops()) + 1

    def test_evaluate_partitions_returns_all(self, simulator, profile):
        results = evaluate_partitions(small_ops(), profile, simulator)
        assert len(results) == len(small_ops()) + 1
        assert all(r.performance.latency_ms > 0 for r in results)

    def test_best_partition_is_minimum(self, simulator, profile):
        results = evaluate_partitions(small_ops(), profile, simulator)
        best = best_partition(small_ops(), profile, simulator, objective="latency")
        assert best.performance.latency_ms == pytest.approx(
            min(r.performance.latency_ms for r in results))

    def test_best_energy_partition_objective(self, simulator, profile):
        best = best_partition(small_ops(), profile, simulator, objective="energy")
        results = evaluate_partitions(small_ops(), profile, simulator)
        assert best.performance.device_energy_j == pytest.approx(
            min(r.performance.device_energy_j for r in results))

    def test_unknown_objective_rejected(self, simulator, profile):
        with pytest.raises(ValueError):
            best_partition(small_ops(), profile, simulator, objective="area")

    def test_partitioning_helps_weak_device_strong_edge(self, profile):
        """On Pi + 1060 the best partition should beat device-only DGCNN."""
        simulator = CoInferenceSimulator(SystemConfig(RASPBERRY_PI_4B, NVIDIA_1060,
                                                      LINK_40MBPS))
        ops = dgcnn_opspecs(k=8)
        device_only = simulator.evaluate_device_only(ops, profile)
        best = best_partition(ops, profile, simulator)
        assert best.performance.latency_ms < device_only.latency_ms
