"""Tier-1 tests for the reprolint static-analysis framework.

Two halves:

* **Golden fixtures** — every checker must fail on its known-bad snippet
  under ``tests/reprolint_fixtures/`` and stay silent on the known-clean
  twin, so a checker can neither silently rot (missed bad) nor grow noisy
  (flagged clean).
* **Live-tree meta-test** — the repository itself must be reprolint-clean
  modulo the committed baseline, and the baseline must stay small,
  justified, and free of stale entries.  This is the test that makes the
  invariants in ``docs/invariants.md`` regressions instead of prose.
"""

import ast
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "reprolint_fixtures"

if str(REPO_ROOT) not in sys.path:  # tools.reprolint lives off the repo root
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import load_baseline, run_checkers, split_findings
from tools.reprolint.baseline import DEFAULT_BASELINE
from tools.reprolint.checkers import (arena_aliasing, dtype_discipline,
                                      layering, lock_discipline,
                                      message_kinds, sleep_discipline)


def fixture_tree(name):
    path = FIXTURES / name
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


# ----------------------------------------------------------------------
# layering
# ----------------------------------------------------------------------
def test_layering_flags_bad_fixture():
    findings = layering.scan_module(fixture_tree("layering_bad.py"),
                                    "layering_bad.py", set())
    flagged = {f.ident for f in findings}
    assert flagged == {"numpy", "repro.serving.app"}
    assert all(f.checker == "layering" for f in findings)


def test_layering_clean_fixture_passes():
    findings = layering.scan_module(fixture_tree("layering_clean.py"),
                                    "layering_clean.py", {"numpy"})
    assert findings == []  # incl. the TYPE_CHECKING import of serving


def test_layering_relative_import_resolution():
    tree = ast.parse("from . import kernels\nfrom .arena import BufferArena\n"
                     "from ..graph.knn import knn_graph\n")
    modules = {m for m, _ in layering.imported_modules(
        tree, "src/repro/runtime/plan.py")}
    assert modules == {"repro.runtime.kernels", "repro.runtime.arena",
                       "repro.graph.knn"}


# ----------------------------------------------------------------------
# dtype-discipline
# ----------------------------------------------------------------------
def test_dtype_flags_bad_fixture():
    findings = dtype_discipline.scan_module(fixture_tree("dtype_bad.py"),
                                            "dtype_bad.py")
    assert len(findings) >= 2
    scopes = {f.ident.split(":")[0] for f in findings}
    assert {"halve", "clamp"} <= scopes
    assert all(f.checker == "dtype-discipline" for f in findings)


def test_dtype_clean_fixture_passes():
    findings = dtype_discipline.scan_module(fixture_tree("dtype_clean.py"),
                                            "dtype_clean.py")
    assert findings == []


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
def test_locks_flag_bad_fixture():
    findings = lock_discipline.scan_module(fixture_tree("locks_bad.py"),
                                           "locks_bad.py")
    assert [f.ident for f in findings] == ["Counter._count"]
    assert findings[0].checker == "lock-discipline"
    assert "reset" in findings[0].message  # names the bare write site


def test_locks_clean_fixture_passes():
    findings = lock_discipline.scan_module(fixture_tree("locks_clean.py"),
                                           "locks_clean.py")
    assert findings == []  # _locked convention + secondary locks honored


# ----------------------------------------------------------------------
# message-kinds
# ----------------------------------------------------------------------
KNOWN_KINDS = {"frame", "stop", "result", "error"}


def test_kinds_flag_bad_fixture():
    findings, _ = message_kinds.scan_file(fixture_tree("kinds_bad.py"),
                                          "kinds_bad.py", KNOWN_KINDS)
    flagged = sorted(f.ident for f in findings)
    assert flagged == ["error", "frame", "framee", "result", "stop"]
    # The unknown kind gets the declare-a-constant hint, not the use-it one.
    typo = next(f for f in findings if f.ident == "framee")
    assert "declare" in typo.message


def test_kinds_clean_fixture_passes_and_records_dispatch():
    findings, dispatched = message_kinds.scan_file(
        fixture_tree("kinds_clean.py"), "kinds_clean.py", KNOWN_KINDS)
    assert findings == []  # constants everywhere; dtype.kind is exempt
    assert {"KIND_FRAME", "KIND_STOP"} <= dispatched


def test_kinds_exhaustiveness_reports_undispatched():
    constants = {"KIND_FRAME": "frame", "KIND_STOP": "stop",
                 "KIND_ORPHAN": "orphan"}
    missing = message_kinds.undispatched_constants(
        constants, {}, {"KIND_FRAME", "KIND_STOP"})
    assert list(missing) == ["KIND_ORPHAN"]
    # Group names expand: dispatching through CONTROL_KINDS covers members.
    covered = message_kinds.undispatched_constants(
        constants, {"CONTROL_KINDS": {"KIND_ORPHAN"}},
        {"KIND_FRAME", "KIND_STOP", "CONTROL_KINDS"})
    assert list(covered) == []


# ----------------------------------------------------------------------
# arena-aliasing
# ----------------------------------------------------------------------
def test_arena_flags_bad_fixture():
    findings = arena_aliasing.scan_module(fixture_tree("arena_bad.py"),
                                          "arena_bad.py")
    scopes = {f.ident.split(":")[0] for f in findings}
    assert scopes == {"execute", "execute_direct", "execute_view"}
    assert all(f.checker == "arena-aliasing" for f in findings)


def test_arena_clean_fixture_passes():
    findings = arena_aliasing.scan_module(fixture_tree("arena_clean.py"),
                                          "arena_clean.py")
    assert findings == []  # .copy() launders; containers are out of scope


# ----------------------------------------------------------------------
# sleep-discipline
# ----------------------------------------------------------------------
def test_sleep_flags_bad_fixture():
    findings = sleep_discipline.scan_module(fixture_tree("sleep_bad.py"),
                                            "sleep_bad.py")
    flagged = [f.ident for f in findings]
    assert flagged == ["<module>", "test_server_came_up",
                       "test_from_imported_sleep"]
    assert all(f.checker == "sleep-discipline" for f in findings)
    assert "wait_until" in findings[0].message  # points at the idiom


def test_sleep_clean_fixture_passes():
    findings = sleep_discipline.scan_module(fixture_tree("sleep_clean.py"),
                                            "sleep_clean.py")
    assert findings == []  # nested workload callables and lambdas exempt


# ----------------------------------------------------------------------
# live-tree meta-test
# ----------------------------------------------------------------------
def test_live_tree_clean_modulo_baseline():
    findings = run_checkers(REPO_ROOT)
    entries = load_baseline()
    new, _, stale = split_findings(findings, entries)
    assert new == [], ("non-baselined reprolint findings:\n"
                       + "\n".join(f.render() for f in new))
    assert stale == [], ("stale baseline entries (fixed findings still "
                         "baselined): " + ", ".join(e.key for e in stale))


def test_baseline_small_and_justified():
    entries = load_baseline()  # load_baseline raises on any missing reason
    assert len(entries) <= 12
    for entry in entries:
        assert len(entry.justification) >= 30, (
            f"{entry.key}: justification too thin to count as reviewed")
    raw = json.loads(DEFAULT_BASELINE.read_text(encoding="utf-8"))
    assert len(raw["entries"]) == len(entries)


def test_cli_json_contract():
    result = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "--format", "json"],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stdout + result.stderr
    report = json.loads(result.stdout)
    assert report["summary"]["clean"] is True
    assert report["summary"]["new"] == 0
    names = {c["name"] for c in report["checkers"]}
    assert names == {"arena-aliasing", "dtype-discipline", "layering",
                     "lock-discipline", "message-kinds", "sleep-discipline"}
    # Baselined findings ride along with their justifications.
    for finding in report["findings"]:
        assert finding["baselined"] is True
        assert finding["justification"]


def test_check_layering_shim_delegates():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_layering.py")],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "layering" in result.stdout
