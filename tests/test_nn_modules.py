"""Tests for the module system: layers, parameter registration, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(8, 4, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 8))))
        assert out.shape == (5, 4)

    def test_no_bias_option(self):
        layer = nn.Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 4)

    def test_gradients_reach_parameters(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(1))
        out = layer(Tensor(np.random.default_rng(2).standard_normal((6, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None and layer.weight.grad.shape == (4, 3)
        assert layer.bias.grad is not None and layer.bias.grad.shape == (3,)


class TestMLPAndSequential:
    def test_mlp_shapes_and_depth(self):
        mlp = nn.MLP([6, 12, 3], rng=np.random.default_rng(0))
        out = mlp(Tensor(np.ones((4, 6))))
        assert out.shape == (4, 3)
        assert mlp.out_features == 3

    def test_mlp_requires_two_dims(self):
        with pytest.raises(ValueError):
            nn.MLP([5])

    def test_sequential_iteration_and_indexing(self):
        seq = nn.Sequential(nn.Linear(3, 3), nn.ReLU(), nn.Linear(3, 2))
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)
        out = seq(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 2)

    def test_mlp_dropout_only_in_training(self):
        mlp = nn.MLP([4, 8, 2], dropout=0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((3, 4)))
        mlp.eval()
        a = mlp(x).data
        b = mlp(x).data
        np.testing.assert_allclose(a, b)


class TestNormalization:
    def test_batchnorm_normalizes_in_training(self):
        bn = nn.BatchNorm1d(4)
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((200, 4)) * 5 + 3)
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2)
        rng = np.random.default_rng(1)
        for _ in range(50):
            bn(Tensor(rng.standard_normal((32, 2)) + 10.0))
        bn.eval()
        out = bn(Tensor(np.full((4, 2), 10.0))).data
        assert np.abs(out).max() < 1.0

    def test_layernorm_normalizes_rows(self):
        ln = nn.LayerNorm(6)
        rng = np.random.default_rng(2)
        out = ln(Tensor(rng.standard_normal((5, 6)) * 3 + 7)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)


class TestModuleMechanics:
    def test_parameters_are_collected_recursively(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.Sequential(nn.Linear(4, 2)))
        assert len(model.parameters()) == 4  # two weights + two biases
        names = dict(model.named_parameters())
        assert any(name.endswith("weight") for name in names)

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_num_parameters_counts_scalars(self):
        layer = nn.Linear(3, 2)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_zero_grad_clears_all(self):
        layer = nn.Linear(3, 2)
        layer(Tensor(np.ones((1, 3)))).sum().backward()
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())


class TestStateDict:
    def test_roundtrip_restores_weights(self):
        a = nn.MLP([4, 8, 2], rng=np.random.default_rng(0))
        b = nn.MLP([4, 8, 2], rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(1).standard_normal((3, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_missing_key_raises_in_strict_mode(self):
        layer = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({}, strict=True)

    def test_shape_mismatch_raises(self):
        layer = nn.Linear(2, 2)
        bad = {name: np.zeros((5, 5)) for name, _ in layer.named_parameters()}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_batchnorm_buffers_serialized(self):
        bn = nn.BatchNorm1d(3)
        bn(Tensor(np.random.default_rng(0).standard_normal((16, 3)) + 4))
        state = bn.state_dict()
        assert "running_mean" in state
        fresh = nn.BatchNorm1d(3)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh._buffers["running_mean"],
                                   bn._buffers["running_mean"])


class TestSerializationToDisk:
    def test_save_and_load_module(self, tmp_path):
        model = nn.MLP([3, 5, 2], rng=np.random.default_rng(0))
        path = str(tmp_path / "model.npz")
        nn.save_module(model, path)
        clone = nn.MLP([3, 5, 2], rng=np.random.default_rng(7))
        nn.load_module(clone, path)
        x = Tensor(np.random.default_rng(2).standard_normal((4, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_state_dict_file_roundtrip(self, tmp_path):
        state = {"a": np.arange(5.0), "b.c": np.eye(2)}
        path = str(tmp_path / "state.npz")
        nn.save_state_dict(state, path)
        loaded = nn.load_state_dict(path)
        assert set(loaded) == {"a", "b.c"}
        np.testing.assert_allclose(loaded["b.c"], np.eye(2))
