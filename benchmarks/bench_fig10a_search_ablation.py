"""Figure 10(a): constraint-based random search vs evolutionary search.

Regenerates the best-score-so-far trajectories of three random-search runs,
a plain EA run and an EA run seeded with a valid initial population, over the
fused architecture-mapping space — reproducing the paper's finding that the
EA wastes its budget on invalid offspring while random search keeps finding
valid, high-scoring designs.
"""

from __future__ import annotations

import pytest

from conftest import MODELNET_PROFILE, save_report, simulator_for

from repro.core import (ConstraintRandomSearch, CostEstimator,
                        CostEstimatorEvaluator, EvolutionarySearch,
                        EvolutionarySearchConfig, RandomSearchConfig,
                        SearchConstraints)
from repro.evaluation import format_series, format_table
from repro.hardware import JETSON_TX2, INTEL_I7, LINK_40MBPS

TRIALS = 200
CHECKPOINTS = (1, 10, 50, 100, 150, 200)


@pytest.fixture(scope="module")
def trajectories(modelnet_space, modelnet_accuracy):
    simulator = simulator_for(JETSON_TX2, INTEL_I7, LINK_40MBPS)
    estimator = CostEstimator.for_system(JETSON_TX2, INTEL_I7, LINK_40MBPS,
                                         MODELNET_PROFILE)
    evaluator = CostEstimatorEvaluator(estimator, simulator, MODELNET_PROFILE)
    constraints = SearchConstraints(tradeoff_lambda=0.5)

    runs = {}
    for seed in range(3):
        search = ConstraintRandomSearch(
            modelnet_space, modelnet_accuracy, evaluator, constraints,
            RandomSearchConfig(max_trials=TRIALS, tuning_trials=0, seed=seed))
        runs[f"random-{seed + 1}"] = search.run()
    for valid_init, label in ((False, "ea"), (True, "ea+valid-init")):
        ea = EvolutionarySearch(
            modelnet_space, modelnet_accuracy, evaluator, constraints,
            EvolutionarySearchConfig(max_trials=TRIALS, population_size=20,
                                     valid_initial_population=valid_init, seed=0))
        runs[label] = ea.run()
    return runs


def test_fig10a_random_vs_evolutionary(benchmark, trajectories):
    benchmark.pedantic(lambda: {k: r.best_score_curve()[-1]
                                for k, r in trajectories.items()},
                       rounds=1, iterations=1)
    rows = []
    for label, result in trajectories.items():
        curve = result.best_score_curve()
        rows.append([label] + [curve[c - 1] for c in CHECKPOINTS]
                    + [result.num_invalid])
    text = format_table(["strategy"] + [f"best@{c}" for c in CHECKPOINTS]
                        + ["invalid_trials"], rows,
                        title="Figure 10(a): best architecture score vs search trials",
                        float_format="{:.3f}")
    save_report("fig10a_search_ablation.txt", text)

    random_final = max(trajectories[f"random-{i}"].best_score_curve()[-1]
                       for i in (1, 2, 3))
    ea_final = trajectories["ea"].best_score_curve()[-1]
    ea_valid_final = trajectories["ea+valid-init"].best_score_curve()[-1]
    # Random search matches or beats both EA variants within the same budget.
    assert random_final >= ea_final - 0.02
    assert random_final >= ea_valid_final - 0.02
    # The plain EA burns a substantial share of its budget on invalid
    # candidates; constraint-based random search burns none.
    assert trajectories["ea"].num_invalid > TRIALS * 0.2
    assert all(trajectories[f"random-{i}"].num_invalid == 0 for i in (1, 2, 3))
