"""Table 1: qualitative feature-support comparison.

Regenerates the paper's qualitative comparison of supported capabilities and
cross-checks the GCoDE column against what this repository actually
implements (each claimed feature maps to a concrete module).
"""

from __future__ import annotations

from conftest import save_report

from repro.evaluation import paper_feature_table


def test_table1_feature_matrix(benchmark):
    text = benchmark(paper_feature_table)
    save_report("table1_features.txt", text)

    # Every "yes" in the GCoDE column corresponds to an implemented component.
    import repro.core.design_space          # design automation / exploration
    import repro.core.predictor             # performance awareness
    import repro.core.search                # multi-objective optimization
    import repro.system.engine              # device-edge deployment
    import repro.core.dispatcher            # runtime optimization
    assert "GCoDE" in text and "Runtime Optimization" in text
