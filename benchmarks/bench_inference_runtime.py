"""Inference-runtime benchmark: compiled plans vs eager autograd execution.

Measures the edge-side serving hot path — the code the
:class:`~repro.system.engine.EdgeServer` runs once per frame (or per
micro-batch) — for a representative searched entry (two EdgeConv blocks, the
shape of the paper's searched architectures and of DGCNN) and for a minimal
single-block entry, in both the eager autograd runtime and the compiled
plan runtime (:mod:`repro.runtime`).  Wall time is the median of
``ROUNDS`` timed repetitions; numerical equivalence of the two runtimes is
asserted on every configuration.

Unlike the paper-figure benchmarks this one starts the BENCH trajectory:
results are written machine-readably to
``benchmarks/results/inference_runtime.json`` so CI can track the
compiled-vs-eager speedup over time.  The CI perf-smoke job runs this file
with a loose regression threshold (``MIN_HEADLINE_SPEEDUP``); the measured
numbers on an idle machine are substantially higher.

Run standalone:  PYTHONPATH=src python benchmarks/bench_inference_runtime.py
or via pytest:   PYTHONPATH=src python -m pytest benchmarks/bench_inference_runtime.py -q
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List

import numpy as np

from repro.core import Architecture, ArchitectureModel
from repro.serving import RuntimeConfig, build_callables
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.system import compressed_size, WIRE_FORMAT_RAW, WIRE_FORMAT_ZLIB

#: Cloud size / neighbourhood of the serving scenario (matches the
#: micro-batching benchmark so the two BENCH trajectories are comparable).
NUM_POINTS = 64
KNN_K = 16
COMBINE_WIDTH = 64
BATCH_FRAMES = 8
#: Timed repetitions; the median is reported.
ROUNDS = 3
#: Frames per timed repetition.
FRAMES_PER_ROUND = 200
#: CI regression threshold on the headline (representative entry,
#: single-frame) speedup.  Loose on purpose: CI machines are noisy and the
#: point is to catch the compiled path degrading to eager-level cost, not to
#: re-certify the exact speedup.
MIN_HEADLINE_SPEEDUP = 1.8
#: Equivalence bound between the two runtimes (float64).
EQUIVALENCE_ATOL = 1e-9

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results",
                            "inference_runtime.json")

#: Benchmark entries: the representative two-block entry is the headline
#: (searched GCoDE architectures and DGCNN stack several aggregate/combine
#: blocks); the single-block entry bounds the speedup from below (its edge
#: segment is dominated by one kNN construction both runtimes share).
ENTRIES = {
    "edge-2block": Architecture(ops=(
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=KNN_K),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, COMBINE_WIDTH),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, COMBINE_WIDTH),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name="edge-2block"),
    "edge-1block": Architecture(ops=(
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=KNN_K),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, COMBINE_WIDTH),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name="edge-1block"),
}
HEADLINE = "edge-2block"


def _median_ms_per_frame(fn: Callable[[], None], frames_per_call: int) -> float:
    """Median over ROUNDS of the mean per-frame wall time of ``fn``."""
    fn()  # warm caches, arenas and BLAS before timing
    samples = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for _ in range(FRAMES_PER_ROUND // frames_per_call):
            fn()
        elapsed = time.perf_counter() - started
        samples.append(elapsed / FRAMES_PER_ROUND * 1e3)
    return sorted(samples)[len(samples) // 2]


def bench_entry(name: str, architecture: Architecture) -> Dict:
    """Eager-vs-compiled timings for one zoo entry, single-frame and batched."""
    model = ArchitectureModel(architecture, in_dim=3, num_classes=10, seed=0)
    graphs = SyntheticModelNet40(num_points=NUM_POINTS, samples_per_class=1,
                                 num_classes=10, seed=0).generate()
    frame = Batch.from_graphs([graphs[0]])

    eager = build_callables(model, RuntimeConfig(runtime="eager"))
    compiled = build_callables(model, RuntimeConfig(runtime="compiled"))
    eager_device, eager_edge = eager.device_fn, eager.edge_fn
    compiled_edge = compiled.edge_fn
    arrays, meta = eager_device(frame)

    eager_logits = eager_edge(dict(arrays), dict(meta))[0]["logits"]
    compiled_logits = compiled_edge(dict(arrays), dict(meta))[0]["logits"]
    equivalence = float(np.max(np.abs(eager_logits - compiled_logits)))
    assert equivalence < EQUIVALENCE_ATOL, (
        f"{name}: compiled logits diverge from eager by {equivalence:.2e}")

    single_eager_ms = _median_ms_per_frame(
        lambda: eager_edge(arrays, meta), 1)
    single_compiled_ms = _median_ms_per_frame(
        lambda: compiled_edge(arrays, meta), 1)

    requests = [eager_device(Batch.from_graphs([graphs[i % len(graphs)]]))
                for i in range(BATCH_FRAMES)]
    eager_batch = eager.batch_fn
    compiled_batch = compiled.batch_fn
    for (eager_arrays, _), (compiled_arrays, _) in zip(
            eager_batch(requests), compiled_batch(requests)):
        batch_diff = float(np.max(np.abs(eager_arrays["logits"]
                                         - compiled_arrays["logits"])))
        assert batch_diff < EQUIVALENCE_ATOL, (
            f"{name}: batched compiled logits diverge by {batch_diff:.2e}")
    batched_eager_ms = _median_ms_per_frame(
        lambda: eager_batch(requests), BATCH_FRAMES)
    batched_compiled_ms = _median_ms_per_frame(
        lambda: compiled_batch(requests), BATCH_FRAMES)

    return {
        "single_frame": {
            "eager_ms": round(single_eager_ms, 4),
            "compiled_ms": round(single_compiled_ms, 4),
            "speedup": round(single_eager_ms / single_compiled_ms, 2),
        },
        "batched": {
            "batch_frames": BATCH_FRAMES,
            "eager_ms_per_frame": round(batched_eager_ms, 4),
            "compiled_ms_per_frame": round(batched_compiled_ms, 4),
            "speedup": round(batched_eager_ms / batched_compiled_ms, 2),
        },
        "equivalence_max_abs_diff": equivalence,
        "wire_bytes": {
            "zlib": compressed_size(arrays, wire_format=WIRE_FORMAT_ZLIB),
            "raw": compressed_size(arrays, wire_format=WIRE_FORMAT_RAW),
        },
    }


def run_benchmark() -> Dict:
    results = {
        "config": {
            "num_points": NUM_POINTS, "knn_k": KNN_K,
            "combine_width": COMBINE_WIDTH, "rounds": ROUNDS,
            "frames_per_round": FRAMES_PER_ROUND,
            "headline_entry": HEADLINE,
            "min_headline_speedup": MIN_HEADLINE_SPEEDUP,
        },
        "entries": {name: bench_entry(name, architecture)
                    for name, architecture in ENTRIES.items()},
    }
    return results


def check_speedup(results: Dict) -> None:
    """Compiled plans must pay on the representative entry, both modes."""
    headline = results["entries"][HEADLINE]
    single = headline["single_frame"]["speedup"]
    batched = headline["batched"]["speedup"]
    assert single >= MIN_HEADLINE_SPEEDUP, (
        f"single-frame compiled speedup regressed: {single:.2f}x < "
        f"{MIN_HEADLINE_SPEEDUP}x")
    assert batched >= 1.0, (
        f"batched compiled path slower than eager: {batched:.2f}x")


def save_results(results: Dict) -> str:
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    return RESULTS_PATH


def format_summary(results: Dict) -> str:
    lines = ["inference runtime: compiled plans vs eager autograd "
             f"({NUM_POINTS}-point clouds, k={KNN_K}, median of {ROUNDS})"]
    for name, entry in results["entries"].items():
        single, batched = entry["single_frame"], entry["batched"]
        lines.append(
            f"  {name:12s} single-frame {single['eager_ms']:.3f} -> "
            f"{single['compiled_ms']:.3f} ms ({single['speedup']:.2f}x)   "
            f"batched/frame {batched['eager_ms_per_frame']:.3f} -> "
            f"{batched['compiled_ms_per_frame']:.3f} ms "
            f"({batched['speedup']:.2f}x)")
    return "\n".join(lines)


def test_inference_runtime(benchmark):
    results = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    save_results(results)
    print(format_summary(results))
    check_speedup(results)


def main() -> None:
    results = run_benchmark()
    path = save_results(results)
    print(format_summary(results))
    check_speedup(results)
    print(f"\nresults written to {path}")
    headline = results["entries"][HEADLINE]["single_frame"]["speedup"]
    print(f"perf-smoke passed: {headline:.2f}x single-frame edge inference "
          f"on {HEADLINE} (threshold {MIN_HEADLINE_SPEEDUP}x)")


if __name__ == "__main__":
    main()
