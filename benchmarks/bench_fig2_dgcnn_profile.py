"""Figure 2: per-operation latency share and transfer size of DGCNN (Jetson TX2).

Regenerates, for every operation of DGCNN on 1024-point ModelNet40 data, the
percentage of total latency it accounts for on the Jetson TX2 and the size of
the intermediate data that would have to be transferred if the model were
split right after that operation — the two curves of the paper's Fig. 2.
"""

from __future__ import annotations

from conftest import MODELNET_PROFILE, save_report, simulator_for

from repro.baselines import dgcnn_architecture
from repro.evaluation import format_table
from repro.hardware import JETSON_TX2, NVIDIA_1060, LINK_40MBPS


def build_profile_rows():
    simulator = simulator_for(JETSON_TX2, NVIDIA_1060, LINK_40MBPS)
    arch = dgcnn_architecture()
    rows = simulator.profile_operations(arch.ops, MODELNET_PROFILE, side="device",
                                        classifier_hidden=arch.classifier_hidden)
    total = sum(latency for _, latency, _ in rows)
    table = []
    for spec, latency, out_bytes in rows:
        table.append([spec.short_name(), latency, 100.0 * latency / total,
                      out_bytes / 1024.0])
    return table, total


def test_fig2_dgcnn_operation_profile(benchmark):
    table, total = benchmark(build_profile_rows)
    text = format_table(
        ["operation", "latency_ms", "latency_share_%", "transfer_size_KiB"],
        table,
        title=(f"Figure 2: DGCNN per-operation profile on Jetson TX2 "
               f"(total {total:.1f} ms)"))
    save_report("fig2_dgcnn_profile.txt", text)

    # Shape checks mirroring the paper's observations: the final KNN (Sample)
    # is the single most expensive operation, and Pooling collapses the
    # transfer size by orders of magnitude.
    sample_rows = [row for row in table if row[0].startswith("sample")]
    assert max(row[2] for row in sample_rows) > 15.0
    pool_row = next(row for row in table if row[0].startswith("global_pool"))
    widest_row = max(table, key=lambda row: row[3])
    assert pool_row[3] < widest_row[3] / 50
