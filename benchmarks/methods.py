"""Shared method runners for the benchmark harness.

Builds, for a given device-edge-link system, the deployment row of every
method compared in the paper (DGCNN, Li et al., HGNAS, BRANCHY-GNN,
HGNAS+Partition, GCoDE, and the MR-side PNAS variants).  Search results are
memoized so that Table 2, Table 3 and the figures that reuse them do not pay
for the same search twice.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from conftest import MODELNET_PROFILE, MR_PROFILE, simulator_for

from repro.baselines import (HGNAS, HGNASConfig, branchy_architecture,
                             dgcnn_architecture, hgnas_with_partition,
                             li_optimized_architecture, pnas_architecture,
                             pnas_with_partition)
from repro.core import (Architecture, ConstraintRandomSearch, CostEstimator,
                        CostEstimatorEvaluator, RandomSearchConfig,
                        SearchConstraints)
from repro.evaluation import MethodResult
from repro.hardware import DataProfile

#: Memo tables (keyed by device/edge/link names) shared across benchmark files.
_GCODE_CACHE: Dict[Tuple, object] = {}
_HGNAS_CACHE: Dict[Tuple, object] = {}

GCODE_TRIALS = 150
HGNAS_TRIALS = 120


def run_gcode(space, accuracy, device, edge, link, profile,
              tradeoff_lambda: float = 0.5, trials: int = GCODE_TRIALS):
    """Constraint-based random search for one system; memoized."""
    key = ("gcode", profile.name, device.name, edge.name, link.bandwidth_mbps,
           tradeoff_lambda, trials)
    if key not in _GCODE_CACHE:
        simulator = simulator_for(device, edge, link)
        estimator = CostEstimator.for_system(device, edge, link, profile)
        evaluator = CostEstimatorEvaluator(estimator, simulator, profile)
        search = ConstraintRandomSearch(
            space, accuracy, evaluator,
            SearchConstraints(tradeoff_lambda=tradeoff_lambda),
            RandomSearchConfig(max_trials=trials, tuning_trials=5, keep_top=8,
                               seed=0))
        _GCODE_CACHE[key] = search.run()
    return _GCODE_CACHE[key]


def run_hgnas(accuracy, device, profile, trials: int = HGNAS_TRIALS):
    """Single-device hardware-aware NAS baseline; memoized per device."""
    key = ("hgnas", profile.name, device.name, trials)
    if key not in _HGNAS_CACHE:
        hgnas = HGNAS(profile, device, accuracy,
                      HGNASConfig(max_trials=trials, tradeoff_lambda=0.5,
                                  num_layers=8, seed=0))
        _HGNAS_CACHE[key] = hgnas.search()
    return _HGNAS_CACHE[key]


def evaluate_row(method: str, mode: str, arch: Architecture, accuracy_pair,
                 simulator, profile) -> MethodResult:
    """Simulate one deployment row (latency + device energy) of a method."""
    if mode == "D":
        perf = simulator.evaluate_device_only(arch.ops, profile,
                                              arch.classifier_hidden)
    elif mode == "E":
        perf = simulator.evaluate_edge_only(arch.ops, profile,
                                            arch.classifier_hidden)
    else:
        perf = simulator.evaluate(arch.ops, profile, arch.classifier_hidden)
    overall, balanced = accuracy_pair
    return MethodResult(method=method, mode=mode, accuracy=overall,
                        balanced_accuracy=balanced, latency_ms=perf.latency_ms,
                        device_energy_j=perf.device_energy_j)


def modelnet_method_rows(space, accuracy, device, edge, link) -> List[MethodResult]:
    """All Table-2 rows for one ModelNet40 system configuration."""
    profile = MODELNET_PROFILE
    simulator = simulator_for(device, edge, link)
    rows: List[MethodResult] = []

    dgcnn = dgcnn_architecture()
    li = li_optimized_architecture()
    fixed_accuracy = {  # fixed designs: accuracy measured once via the supernet
        "dgcnn": accuracy(Architecture(ops=dgcnn.ops[:space.num_layers])),
        "li": accuracy(Architecture(ops=li.ops[:space.num_layers])),
    }
    rows.append(evaluate_row("DGCNN", "D", dgcnn, fixed_accuracy["dgcnn"],
                             simulator, profile))
    rows.append(evaluate_row("DGCNN", "E", dgcnn, fixed_accuracy["dgcnn"],
                             simulator, profile))
    rows.append(evaluate_row("Li et al.", "D", li, fixed_accuracy["li"],
                             simulator, profile))
    rows.append(evaluate_row("Li et al.", "E", li, fixed_accuracy["li"],
                             simulator, profile))

    hgnas = run_hgnas(accuracy, device, profile)
    rows.append(evaluate_row("HGNAS", "D", hgnas.architecture,
                             (hgnas.accuracy, hgnas.accuracy), simulator, profile))
    rows.append(evaluate_row("HGNAS", "E", hgnas.architecture,
                             (hgnas.accuracy, hgnas.accuracy), simulator, profile))

    branchy = branchy_architecture(simulator, profile)
    rows.append(evaluate_row("BRANCHY", "Co", branchy,
                             fixed_accuracy["dgcnn"], simulator, profile))

    partitioned = hgnas_with_partition(hgnas, simulator, profile)
    rows.append(evaluate_row("HGNAS+Partition", "Co", partitioned,
                             (hgnas.accuracy, hgnas.accuracy), simulator, profile))

    result = run_gcode(space, accuracy, device, edge, link, profile)
    best = result.top_k(1, "latency")[0]
    rows.append(MethodResult(method="GCoDE", mode="Co", accuracy=best.accuracy,
                             balanced_accuracy=best.balanced_accuracy,
                             latency_ms=best.latency_ms,
                             device_energy_j=best.device_energy_j))
    return rows


def mr_method_rows(space, accuracy, device, edge, link) -> List[MethodResult]:
    """All Table-3 rows for one MR system configuration."""
    profile = MR_PROFILE
    simulator = simulator_for(device, edge, link)
    rows: List[MethodResult] = []

    pnas = pnas_architecture()
    pnas_acc = accuracy(Architecture(ops=pnas.ops[:space.num_layers]))
    rows.append(evaluate_row("PNAS", "D", pnas, pnas_acc, simulator, profile))
    rows.append(evaluate_row("PNAS", "E", pnas, pnas_acc, simulator, profile))
    rows.append(evaluate_row("PNAS+Partition", "Co",
                             pnas_with_partition(pnas, simulator, profile),
                             pnas_acc, simulator, profile))

    branchy = branchy_architecture(simulator, profile)
    rows.append(evaluate_row("BRANCHY", "Co", branchy, pnas_acc, simulator, profile))

    result = run_gcode(space, accuracy, device, edge, link, profile,
                       trials=GCODE_TRIALS)
    best = result.top_k(1, "latency")[0]
    rows.append(MethodResult(method="GCoDE", mode="Co", accuracy=best.accuracy,
                             balanced_accuracy=best.balanced_accuracy,
                             latency_ms=best.latency_ms,
                             device_energy_j=best.device_energy_j))
    return rows
