"""Process-parallel shard scaling: aggregate edge throughput vs shard count.

Drives 8 concurrent clients against one :class:`~repro.serving.ServingApp`
and sweeps ``ShardingConfig.num_shards`` (1 = the in-process baseline — no
worker processes at all).  In-process serving executes every engine call
under one GIL, so aggregate throughput is pinned near one core no matter how
many clients connect; each shard is a worker process with its own compiled
plans and buffer arenas, so N shards put N cores to work while the parent's
socket threads merely route frames over the shared-memory rings.

The workload is the edge-heavy entry of ``bench_micro_batching`` scaled up
(128-point clouds, k=16, width-128 combine) so per-frame engine time
dominates the ring transport cost, and clients speak the raw wire framing so
the parent spends no time in zlib.  Shard-served results are numerically
equivalent to in-process serving (pinned by ``tests/test_serving_shards.py``).

Thresholds (loose, CI-safe): >= 1.5x aggregate throughput at 2 shards on a
>= 2-core machine, additionally >= 2.5x at 4 shards on a >= 8-core machine.
Single-core runners skip gracefully (the JSON result records the skip).

Run standalone:  PYTHONPATH=src python benchmarks/bench_shard_scaling.py
or via pytest:   PYTHONPATH=src python -m pytest benchmarks/bench_shard_scaling.py -q
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Sequence, Tuple

from repro.core import Architecture, ArchitectureZoo, ZooEntry
from repro.evaluation import format_table
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.serving import (ClientConfig, ServingConfig, ShardingConfig, serve,
                           sharding_supported)
from repro.system import EdgeServerStats

NUM_CLIENTS = 8
FRAMES_PER_CLIENT = 60
#: Shard counts to sweep; 1 is the in-process baseline and counts above the
#: machine's core count are dropped (they could only time-slice).
SHARD_COUNTS = (1, 2, 4)
#: Steady-state window (fractions of total frames served) timed from the
#: server's own frame counter, excluding startup and drain transients.
WINDOW = (0.15, 0.75)
#: Heavier per-frame edge work than the batching bench: the point of the
#: sweep is compute scaling, so engine time must dominate transport time.
NUM_POINTS = 128
KNN_K = 16
COMBINE_WIDTH = 128
ENTRY = "edge-heavy"

#: Loose CI thresholds, keyed by the cores the runner must have.
THRESHOLD_2_SHARDS = 1.5
THRESHOLD_4_SHARDS = 2.5


def build_zoo() -> ArchitectureZoo:
    """One edge-heavy entry (Communicate first: the edge does all the work)."""
    arch = Architecture(ops=(
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=KNN_K),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, COMBINE_WIDTH),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name=ENTRY)
    return ArchitectureZoo([ZooEntry(ENTRY, arch, 0.9, 50.0, 0.5)])


def build_frames() -> List[Batch]:
    graphs = SyntheticModelNet40(num_points=NUM_POINTS, samples_per_class=2,
                                 num_classes=10, seed=0).generate()
    return [Batch.from_graphs([graph]) for graph in graphs[:20]]


def run_once(zoo: ArchitectureZoo, frames: List[Batch],
             num_shards: int) -> Tuple[float, EdgeServerStats]:
    """Steady-state aggregate fps of NUM_CLIENTS pipelines for one config."""
    config = ServingConfig(
        sharding=ShardingConfig(num_shards=num_shards),
        server={"max_workers": NUM_CLIENTS})
    client_config = ClientConfig(wire_format="raw", pipeline_timeout_s=300.0)
    failures: List[BaseException] = []
    with serve(zoo, config, in_dim=3, num_classes=10) as app:
        def run_client(index: int) -> None:
            try:
                with app.client(model=ENTRY, name=f"bench-{index}",
                                config=client_config) as client:
                    sequence = [frames[i % len(frames)]
                                for i in range(FRAMES_PER_CLIENT)]
                    results, _ = client.run(sequence)
                    assert len(results) == FRAMES_PER_CLIENT
            except BaseException as exc:
                failures.append(exc)

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(NUM_CLIENTS)]
        for thread in threads:
            thread.start()
        total = NUM_CLIENTS * FRAMES_PER_CLIENT
        low_mark, high_mark = (int(total * fraction) for fraction in WINDOW)
        low_at = high_at = None
        deadline = time.monotonic() + 600.0
        while high_at is None and time.monotonic() < deadline:
            served = app.server.frames_processed
            now = time.perf_counter()
            if low_at is None and served >= low_mark:
                low_at = now
            if served >= high_mark:
                high_at = now
            time.sleep(0.002)
        for thread in threads:
            thread.join(timeout=600.0)
        stats = app.stats()
    if failures:
        raise RuntimeError(f"{len(failures)} client(s) failed: {failures[0]}")
    if low_at is None or high_at is None:
        raise RuntimeError("steady-state window never completed")
    return (high_mark - low_mark) / (high_at - low_at), stats


def shard_counts() -> List[int]:
    cores = os.cpu_count() or 1
    return [count for count in SHARD_COUNTS if count == 1 or count <= cores]


def run_sweep(counts: Sequence[int] = None
              ) -> Dict[int, Tuple[float, EdgeServerStats]]:
    counts = list(counts) if counts is not None else shard_counts()
    zoo, frames = build_zoo(), build_frames()
    run_once(zoo, frames, 1)  # warm up allocators/BLAS before timing
    results: Dict[int, Tuple[float, EdgeServerStats]] = {}
    for count in counts:
        results[count] = run_once(zoo, frames, count)
    return results


def sweep_table(results: Dict[int, Tuple[float, EdgeServerStats]]) -> str:
    base_fps = results[min(results)][0]
    rows = []
    for count, (fps, stats) in sorted(results.items()):
        shard_frames = [shard.frames for shard in stats.shards]
        rows.append([count, fps, fps / base_fps,
                     "-".join(str(n) for n in shard_frames) or "in-proc"])
    return format_table(
        ["shards", "aggregate_fps", "speedup_vs_inproc", "frames_per_shard"],
        rows,
        title="Process-parallel shard scaling, steady-state aggregate "
              f"throughput ({NUM_CLIENTS} clients, {FRAMES_PER_CLIENT} "
              f"frames/client, {NUM_POINTS}-point clouds, k={KNN_K}, "
              f"{os.cpu_count()} cores)")


def sweep_json(results: Dict[int, Tuple[float, EdgeServerStats]],
               skipped: str = "") -> Dict:
    """JSON twin of the sweep; ``skipped`` records *why* a run produced no
    numbers (platform/core constraints), so a missing result is
    distinguishable from a broken bench when diffing CI artifacts."""
    payload: Dict = {
        "bench": "shard_scaling",
        "cpu_count": os.cpu_count(),
        "clients": NUM_CLIENTS,
        "frames_per_client": FRAMES_PER_CLIENT,
        "num_points": NUM_POINTS,
        "knn_k": KNN_K,
        "skipped": skipped or None,
        "shards": {},
    }
    if results:
        base_fps = results[min(results)][0]
        for count, (fps, stats) in sorted(results.items()):
            payload["shards"][str(count)] = {
                "aggregate_fps": fps,
                "speedup_vs_inproc": fps / base_fps,
                "frames_per_shard": [shard.frames for shard in stats.shards],
                "shard_service_time_s": [shard.service_time_s
                                         for shard in stats.shards],
            }
    return payload


def check_speedup(results: Dict[int, Tuple[float, EdgeServerStats]]) -> None:
    """Sharding must pay on multi-core machines (loose CI thresholds)."""
    cores = os.cpu_count() or 1
    base = results[1][0]
    for count, (fps, stats) in results.items():
        if count > 1:
            # Every shard actually served traffic and none crashed.
            assert len(stats.shards) == count
            assert all(shard.frames > 0 for shard in stats.shards), (
                f"idle shard at num_shards={count}: "
                f"{[s.frames for s in stats.shards]}")
    if cores >= 2 and 2 in results:
        assert results[2][0] >= THRESHOLD_2_SHARDS * base, (
            f"2-shard speedup below {THRESHOLD_2_SHARDS}x: "
            f"{results[2][0]:.1f} vs {base:.1f} fps on {cores} cores")
    if cores >= 8 and 4 in results:
        assert results[4][0] >= THRESHOLD_4_SHARDS * base, (
            f"4-shard speedup below {THRESHOLD_4_SHARDS}x: "
            f"{results[4][0]:.1f} vs {base:.1f} fps on {cores} cores")


def _skip_reason() -> str:
    if not sharding_supported("shm"):
        return "platform lacks multiprocessing.shared_memory"
    if (os.cpu_count() or 1) < 2:
        return f"single-core machine ({os.cpu_count()} cpu)"
    return ""


def test_shard_scaling(benchmark):
    import pytest
    from conftest import save_json, save_report
    reason = _skip_reason()
    if reason:
        save_json("shard_scaling.json", sweep_json({}, skipped=reason))
        pytest.skip(f"shard scaling bench skipped: {reason}")
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_report("shard_scaling.txt", sweep_table(results))
    save_json("shard_scaling.json", sweep_json(results))
    check_speedup(results)


def main() -> None:
    import sys
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import save_json, save_report
    reason = _skip_reason()
    if reason:
        save_json("shard_scaling.json", sweep_json({}, skipped=reason))
        print(f"shard scaling bench skipped: {reason}")
        return
    results = run_sweep()
    save_report("shard_scaling.txt", sweep_table(results))
    save_json("shard_scaling.json", sweep_json(results))
    check_speedup(results)
    best = max(results)
    print(f"\nshard scaling check passed: {best} shards serve "
          f"{results[best][0] / results[1][0]:.2f}x the frames/s of "
          "in-process serving")


if __name__ == "__main__":
    main()
