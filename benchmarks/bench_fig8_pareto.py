"""Figure 8: accuracy-vs-latency design-space exploration (Jetson TX2 device).

Regenerates the scatter of explored GCoDE candidates together with the
baseline points (DGCNN, Li et al., BRANCHY, HGNAS, HGNAS+Partition) and
checks that GCoDE pushes the Pareto frontier: its candidate set contains
points that dominate or match every baseline.
"""

from __future__ import annotations

import pytest

from conftest import MODELNET_PROFILE, save_report, simulator_for
from methods import modelnet_method_rows, run_gcode

from repro.evaluation import format_table, pareto_front, hypervolume
from repro.hardware import JETSON_TX2, INTEL_I7, LINK_40MBPS


@pytest.fixture(scope="module")
def exploration(modelnet_space, modelnet_accuracy):
    result = run_gcode(modelnet_space, modelnet_accuracy, JETSON_TX2, INTEL_I7,
                       LINK_40MBPS, MODELNET_PROFILE)
    baselines = modelnet_method_rows(modelnet_space, modelnet_accuracy,
                                     JETSON_TX2, INTEL_I7, LINK_40MBPS)
    return result, baselines


def test_fig8_pareto_frontier(benchmark, exploration):
    result, baselines = exploration
    benchmark.pedantic(lambda: pareto_front(
        [(c.latency_ms, c.accuracy) for c in result.candidates]),
        rounds=3, iterations=1)

    gcode_points = [(c.latency_ms, c.accuracy) for c in result.candidates]
    baseline_points = [(row.latency_ms, row.accuracy) for row in baselines
                       if row.method != "GCoDE"]
    rows = ([["GCoDE", lat, acc * 100.0] for lat, acc in gcode_points]
            + [[f"{row.method} ({row.mode})", row.latency_ms, row.accuracy * 100.0]
               for row in baselines if row.method != "GCoDE"])
    text = format_table(["point", "latency_ms", "accuracy_%"], rows,
                        title="Figure 8: accuracy vs latency exploration "
                              "(TX2 device, i7 edge, 40 Mbps)")
    save_report("fig8_pareto.txt", text)

    # GCoDE pushes the latency side of the frontier: its fastest candidate is
    # faster than every baseline deployment.  Accuracy at this reproduction
    # scale comes from a briefly-trained one-shot supernet, so it is a noisy
    # proxy; the frontier check therefore allows a small accuracy tolerance
    # when testing that GCoDE candidates match the baselines.
    assert min(lat for lat, _ in gcode_points) < min(lat for lat, _ in baseline_points)
    tolerance = 0.15
    for baseline_latency, baseline_accuracy in baseline_points:
        assert any(lat <= baseline_latency and acc >= baseline_accuracy - tolerance
                   for lat, acc in gcode_points)
    # The search retained several distinct Pareto-interesting designs (the
    # architecture zoo the runtime dispatcher draws from).
    assert len(pareto_front(gcode_points)) >= 2
