"""Table 3: MR (text-graph) comparison of GCoDE against PNAS and BRANCHY-GNN.

Regenerates the MR table at 40 Mbps: accuracy, latency and device energy of
PNAS (device-only / edge-only), PNAS with its best partition point,
BRANCHY-GNN and GCoDE on all four device-edge configurations.
"""

from __future__ import annotations

import pytest

from conftest import SYSTEM_PAIRS, save_report
from methods import mr_method_rows

from repro.evaluation import format_table
from repro.hardware import LINK_40MBPS


@pytest.fixture(scope="module")
def table_rows(mr_space, mr_accuracy):
    rows = []
    for device, edge, label in SYSTEM_PAIRS:
        for row in mr_method_rows(mr_space, mr_accuracy, device, edge, LINK_40MBPS):
            rows.append([label, row.method, row.mode, row.accuracy * 100.0,
                         row.latency_ms, row.device_energy_j])
    return rows


def test_table3_mr_comparison(benchmark, table_rows):
    benchmark.pedantic(lambda: table_rows, rounds=1, iterations=1)
    text = format_table(
        ["system", "method", "mode", "acc_%", "latency_ms", "energy_J"],
        table_rows, title="Table 3: MR comparison at 40 Mbps")
    save_report("table3_mr.txt", text)

    def latency(system, method):
        return next(r[4] for r in table_rows if r[0] == system and r[1] == method)

    def energy(system, method):
        return next(r[5] for r in table_rows if r[0] == system and r[1] == method)

    for _, _, system in SYSTEM_PAIRS:
        # GCoDE is the fastest method on every system configuration and its
        # on-device energy is on par with the frugalest baseline (in the
        # paper it is strictly the lowest; here the Edge-Only PNAS rows pay
        # almost nothing on the device because MR inputs are tiny, so a small
        # tolerance is allowed).
        others = ("PNAS", "PNAS+Partition", "BRANCHY")
        assert all(latency(system, "GCoDE") < latency(system, m) for m in others)
        best_other_energy = min(energy(system, m) for m in others)
        assert energy(system, "GCoDE") <= best_other_energy * 2.0 + 1e-3

    # MR inference is in the millisecond regime (vs hundreds of ms for
    # ModelNet40), matching the scale of the paper's Table 3.
    assert all(row[4] < 100.0 for row in table_rows)
