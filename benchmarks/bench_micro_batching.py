"""Micro-batching throughput: batched vs per-frame edge serving.

Drives 8 concurrent :class:`DeviceClient` pipelines against one
:class:`EdgeServer` holding a real (edge-heavy) zoo entry and sweeps the
server's ``max_batch_size``.  With ``max_batch_size=1`` every frame costs
its own engine call, serialized on the entry's model lock; with batching on,
the :class:`~repro.system.engine.MicroBatcher` coalesces the concurrent
frames into multi-graph engine calls (see
:func:`repro.core.executor.batched_edge_fn`), amortizing per-call overhead —
graph construction, scatter dispatch, matmul launches — across the batch.

The batched path is numerically equivalent to per-frame serving (covered by
``tests/test_system_batching.py``); this benchmark regenerates the
throughput table showing *why* it exists: steady-state aggregate edge
throughput at 8 clients (measured from the server's frame counter over the
middle of each run, excluding connection-startup and drain transients) must
improve by at least 1.5x over per-frame serving.

Run standalone:  PYTHONPATH=src python benchmarks/bench_micro_batching.py
or via pytest:   PYTHONPATH=src python -m pytest benchmarks/bench_micro_batching.py -q
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Sequence, Tuple

from repro.core import (Architecture, ArchitectureZoo, ServingCallables,
                        ZooEntry)
from repro.serving import build_zoo_callables
from repro.evaluation import format_table
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.system import DeviceClient, EdgeServer, EdgeServerStats

NUM_CLIENTS = 8
#: Long enough that the steady-state window below spans >1 s per run.
FRAMES_PER_CLIENT = 150
BATCH_SIZES = (1, 2, 4, 8)
#: Runs per batch size; the median is reported — single runs jitter with
#: thread scheduling, and the median is robust against one lucky/unlucky
#: outlier on either side of the comparison.
ROUNDS = 3
MAX_WAIT_MS = 5.0
#: Throughput is measured over the middle of each run (between these
#: fractions of total frames served), from the server's own frame counter:
#: connection/thread startup and the drain tail would otherwise dominate
#: sub-second runs and bury the serving-rate difference in jitter.
WINDOW = (0.15, 0.75)
#: Small clouds with a dense neighbourhood: per-frame edge calls are then
#: dominated by per-call overhead (graph build, scatter dispatch), which is
#: exactly what the batched path amortizes and vectorizes.
NUM_POINTS = 64
KNN_K = 16
COMBINE_WIDTH = 64
ENTRY = "edge-heavy"


def build_serving() -> Tuple[ServingCallables, List[Batch]]:
    """One edge-heavy zoo entry (Communicate first: the edge does the work)."""
    arch = Architecture(ops=(
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=KNN_K),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, COMBINE_WIDTH),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name=ENTRY)
    zoo = ArchitectureZoo([ZooEntry(ENTRY, arch, 0.9, 50.0, 0.5)])
    serving = build_zoo_callables(zoo, in_dim=3, num_classes=10, seed=0)[ENTRY]
    graphs = SyntheticModelNet40(num_points=NUM_POINTS, samples_per_class=2,
                                 num_classes=10, seed=0).generate()
    frames = [Batch.from_graphs([graph]) for graph in graphs[:20]]
    return serving, frames


def run_once(serving: ServingCallables, frames: List[Batch],
             max_batch_size: int) -> Tuple[float, EdgeServerStats]:
    """Steady-state aggregate fps of NUM_CLIENTS pipelines for one batch size.

    All clients pump their frames concurrently; the reported throughput is
    the server-side serving rate between WINDOW fractions of the total
    frame count, timed by polling ``EdgeServer.frames_processed``.
    """
    kwargs = dict(edge_fns={ENTRY: serving.edge_fn}, max_workers=NUM_CLIENTS)
    if max_batch_size > 1:
        kwargs.update(batch_fns={ENTRY: serving.batch_fn},
                      max_batch_size=max_batch_size, max_wait_ms=MAX_WAIT_MS)
    server = EdgeServer(**kwargs).start()
    failures: List[BaseException] = []

    def run_client(index: int) -> None:
        client = DeviceClient(server.host, server.port, model=ENTRY,
                              client_name=f"bench-{index}")
        try:
            sequence = [frames[i % len(frames)]
                        for i in range(FRAMES_PER_CLIENT)]
            results, _ = client.run_pipeline(sequence, serving.device_fn,
                                             timeout_s=120.0)
            assert len(results) == FRAMES_PER_CLIENT
        except BaseException as exc:
            failures.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=run_client, args=(i,))
               for i in range(NUM_CLIENTS)]
    for thread in threads:
        thread.start()
    total = NUM_CLIENTS * FRAMES_PER_CLIENT
    low_mark, high_mark = (int(total * fraction) for fraction in WINDOW)
    low_at = high_at = None
    deadline = time.monotonic() + 120.0
    while high_at is None and time.monotonic() < deadline:
        served = server.frames_processed
        now = time.perf_counter()
        if low_at is None and served >= low_mark:
            low_at = now
        if served >= high_mark:
            high_at = now
        time.sleep(0.002)
    for thread in threads:
        thread.join(timeout=180.0)
    stats = server.stats()
    server.stop()
    if failures:
        raise RuntimeError(f"{len(failures)} client(s) failed: {failures[0]}")
    if low_at is None or high_at is None:
        raise RuntimeError("steady-state window never completed "
                           f"({server.frames_processed}/{total} frames served)")
    return (high_mark - low_mark) / (high_at - low_at), stats


def run_sweep(batch_sizes: Sequence[int] = BATCH_SIZES
              ) -> Dict[int, Tuple[float, EdgeServerStats]]:
    serving, frames = build_serving()
    # Warm up allocators, BLAS and the compression path before timing.
    run_once(serving, frames, 1)
    results: Dict[int, Tuple[float, EdgeServerStats]] = {}
    for size in batch_sizes:
        samples = sorted((run_once(serving, frames, size)
                          for _ in range(ROUNDS)), key=lambda r: r[0])
        results[size] = samples[len(samples) // 2]
    return results


def sweep_table(results: Dict[int, Tuple[float, EdgeServerStats]]) -> str:
    base_fps = results[min(results)][0]
    rows = []
    for size, (fps, stats) in sorted(results.items()):
        rows.append([size, fps, fps / base_fps, stats.mean_batch_size,
                     stats.mean_service_time_s * 1000.0,
                     stats.mean_queue_delay_s * 1000.0,
                     stats.queue_depth_peak])
    return format_table(
        ["max_batch", "aggregate_fps", "speedup_vs_1", "realized_batch",
         "amortized_service_ms", "queue_delay_ms", "queue_depth_peak"], rows,
        title="Cross-client micro-batching, steady-state aggregate throughput "
              f"({NUM_CLIENTS} clients, {FRAMES_PER_CLIENT} frames/client, "
              f"{NUM_POINTS}-point clouds, k={KNN_K}, "
              f"max_wait={MAX_WAIT_MS:.0f} ms)")


def sweep_json(results: Dict[int, Tuple[float, EdgeServerStats]]) -> Dict:
    """Machine-readable twin of :func:`sweep_table`."""
    base_fps = results[min(results)][0]
    return {
        "bench": "micro_batching",
        "clients": NUM_CLIENTS,
        "frames_per_client": FRAMES_PER_CLIENT,
        "num_points": NUM_POINTS,
        "knn_k": KNN_K,
        "max_wait_ms": MAX_WAIT_MS,
        "batch_sizes": {
            str(size): {
                "aggregate_fps": fps,
                "speedup_vs_1": fps / base_fps,
                "realized_batch": stats.mean_batch_size,
                "amortized_service_ms": stats.mean_service_time_s * 1000.0,
                "queue_delay_ms": stats.mean_queue_delay_s * 1000.0,
                "queue_depth_peak": stats.queue_depth_peak,
                "batch_fallback_frames": stats.batch_fallback_frames,
            }
            for size, (fps, stats) in sorted(results.items())
        },
    }


def check_speedup(results: Dict[int, Tuple[float, EdgeServerStats]]) -> None:
    """Batching must pay: >= 1.5x aggregate throughput at 8 clients."""
    per_frame = results[1][0]
    batched = results[max(results)][0]
    assert batched >= 1.5 * per_frame, (
        f"micro-batching speedup below 1.5x: {batched:.1f} vs "
        f"{per_frame:.1f} fps")
    # Batching genuinely happened: the realized mean batch size is > 1 and
    # no batch degraded to the per-frame fallback.
    assert results[max(results)][1].mean_batch_size > 1.5
    assert results[max(results)][1].batch_fallback_frames == 0


def test_micro_batching(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    from conftest import save_json, save_report
    save_report("micro_batching.txt", sweep_table(results))
    save_json("micro_batching.json", sweep_json(results))
    check_speedup(results)


def main() -> None:
    import os
    import sys
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import save_json, save_report
    results = run_sweep()
    save_report("micro_batching.txt", sweep_table(results))
    save_json("micro_batching.json", sweep_json(results))
    check_speedup(results)
    best = max(results)
    print(f"\nmicro-batching check passed: max_batch={best} serves "
          f"{results[best][0] / results[1][0]:.2f}x the frames/s of "
          "per-frame serving")


if __name__ == "__main__":
    main()
