"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The expensive
shared work — training the one-shot supernets that provide candidate accuracy
for GCoDE and the NAS baselines — happens once per session here.

Scaling note (also recorded in EXPERIMENTS.md): accuracy is measured on the
synthetic datasets at reduced point counts so the suite runs in minutes,
while latency/energy are modelled at the paper's full data scale (1024-point
clouds, 300-dimensional MR word graphs) through the hardware simulator.  The
split mirrors the paper's own separation of task accuracy and system
efficiency.
"""

from __future__ import annotations

import json
import os
import platform
import sys

import numpy as np
import pytest

from repro.core import AccuracyCache, DesignSpace, SuperNet
from repro.graph import SyntheticModelNet40, SyntheticMR, stratified_split
from repro.hardware import (DataProfile, JETSON_TX2, RASPBERRY_PI_4B, INTEL_I7,
                            NVIDIA_1060, LINK_10MBPS, LINK_40MBPS)
from repro.system import CoInferenceSimulator, SystemConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The four device-edge pairings of the paper (device, edge, label).
SYSTEM_PAIRS = [
    (JETSON_TX2, NVIDIA_1060, "TX2->1060"),
    (JETSON_TX2, INTEL_I7, "TX2->i7"),
    (RASPBERRY_PI_4B, NVIDIA_1060, "Pi->1060"),
    (RASPBERRY_PI_4B, INTEL_I7, "Pi->i7"),
]

LINKS = {"40mbps": LINK_40MBPS, "10mbps": LINK_10MBPS}

#: Latency/energy are modelled at the paper's full data scale.
MODELNET_PROFILE = DataProfile.modelnet40(num_points=1024, num_classes=10)
MR_PROFILE = DataProfile.mr(num_words=17, feature_dim=300)

#: Accuracy is measured on reduced-size synthetic data (see module docstring).
ACCURACY_POINTS = 64
ACCURACY_CLASSES = 10


def save_report(name: str, text: str) -> str:
    """Write a regenerated table/figure to benchmarks/results and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return path


def _cpu_model() -> str:
    """Human-readable CPU model, best effort (empty when undetectable)."""
    if sys.platform.startswith("linux"):
        try:
            with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
                for line in handle:
                    if line.lower().startswith("model name"):
                        return line.split(":", 1)[1].strip()
        except OSError:
            pass
    return platform.processor() or ""


def hardware_envelope() -> dict:
    """The machine this run measured on, for apples-to-apples comparisons.

    Throughput and latency numbers are meaningless across machines without
    this: every JSON twin records where it was measured so trend tooling
    can refuse to diff results from different hardware.
    """
    return {
        "cpu_count": os.cpu_count(),
        "cpu_model": _cpu_model(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def save_json(name: str, payload: dict) -> str:
    """Write a machine-readable result to benchmarks/results (BENCH trajectory).

    The serving benchmarks keep their human-readable txt tables *and* write
    these JSON twins so CI and trend tooling can diff runs without parsing
    tables.  Every payload is stamped with the :func:`hardware_envelope` it
    was measured on (an explicit ``hardware`` key in the payload wins).
    """
    payload = dict(payload)
    payload.setdefault("hardware", hardware_envelope())
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture(scope="session")
def modelnet_split():
    dataset = SyntheticModelNet40(num_points=ACCURACY_POINTS, samples_per_class=8,
                                  num_classes=ACCURACY_CLASSES, seed=0)
    return stratified_split(dataset.generate(), 0.6, 0.2, seed=0)


@pytest.fixture(scope="session")
def mr_split():
    dataset = SyntheticMR(num_documents=80, feature_dim=300, mean_nodes=17, seed=0)
    return stratified_split(dataset.generate(), 0.6, 0.2, seed=0)


@pytest.fixture(scope="session")
def modelnet_space():
    return DesignSpace(num_layers=8, profile=MODELNET_PROFILE,
                       combine_widths=(16, 32, 64, 128), k_choices=(9, 20),
                       max_communicates=2)


@pytest.fixture(scope="session")
def mr_space():
    return DesignSpace(num_layers=6, profile=MR_PROFILE,
                       combine_widths=(16, 32, 64), k_choices=(9,),
                       max_communicates=2)


@pytest.fixture(scope="session")
def modelnet_accuracy(modelnet_split, modelnet_space):
    """Supernet-backed accuracy oracle for ModelNet candidates."""
    supernet = SuperNet(modelnet_space, in_dim=3, num_classes=ACCURACY_CLASSES,
                        hidden_dim=64, seed=0)
    supernet.pretrain(modelnet_split.train, epochs=2, batch_size=8, lr=2e-3)
    return AccuracyCache(supernet, modelnet_split.val, batch_size=16)


@pytest.fixture(scope="session")
def mr_accuracy(mr_split, mr_space):
    """Supernet-backed accuracy oracle for MR candidates."""
    supernet = SuperNet(mr_space, in_dim=300, num_classes=2, hidden_dim=64, seed=0)
    supernet.pretrain(mr_split.train, epochs=2, batch_size=8, lr=2e-3)
    return AccuracyCache(supernet, mr_split.val, batch_size=16)


def simulator_for(device, edge, link) -> CoInferenceSimulator:
    return CoInferenceSimulator(SystemConfig(device=device, edge=edge, link=link))
