"""Multi-node cluster scaling: aggregate edge throughput vs node count.

Drives concurrent clients against one :class:`~repro.serving.ServingApp`
whose engine calls execute on TCP replica nodes
(:class:`~repro.runtime.node.NodeProcess`), sweeping 1 -> 2 -> 4 localhost
nodes.  The cluster tier is the multi-machine sibling of the shard tier
(``bench_shard_scaling``): every node is a separate process with its own
compiled plans, reached over the versioned raw wire framing instead of
shared-memory rings, so the sweep measures what the TCP transport costs on
top of the same compute scaling.

The workload mirrors the shard bench (128-point clouds, k=16, width-128
combine: engine time must dominate transport time), clients speak the raw
framing end to end, and the router balances with least-loaded routing.
Cluster-served results are numerically equivalent to in-process serving
(pinned by ``tests/test_serving_cluster.py``).

Unlike the shard bench this one never skips wholesale: a 1-node run is a
meaningful measurement of the TCP tier on any machine.  Node counts above
the core count are dropped (localhost nodes can only time-slice there) and
the scaling thresholds — loose and CI-safe — apply only where the cores
exist: >= 1.3x at 2 nodes on >= 4 cores, >= 1.8x at 4 nodes on >= 8 cores
(lower than the shard thresholds: every frame pays serialization twice).

Run standalone:  PYTHONPATH=src python benchmarks/bench_cluster_scaling.py
or via pytest:   PYTHONPATH=src python -m pytest benchmarks/bench_cluster_scaling.py -q
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Dict, List, Sequence, Tuple

from repro.core import Architecture, ArchitectureZoo, ZooEntry
from repro.evaluation import format_table
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.runtime.node import NodeProcess
from repro.serving import ClientConfig, ClusterConfig, ServingConfig, serve
from repro.system import EdgeServerStats

NUM_CLIENTS = 6
FRAMES_PER_CLIENT = 40
#: Node counts to sweep; counts above the machine's core count are dropped.
NODE_COUNTS = (1, 2, 4)
#: Steady-state window (fractions of total frames served) timed from the
#: server's own frame counter, excluding startup and drain transients.
WINDOW = (0.15, 0.75)
#: Same edge-heavy workload as the shard bench so the two sweeps compare.
NUM_POINTS = 128
KNN_K = 16
COMBINE_WIDTH = 128
ENTRY = "edge-heavy"

#: Loose CI thresholds, keyed by the cores the runner must have.
THRESHOLD_2_NODES = 1.3
THRESHOLD_4_NODES = 1.8


def build_zoo() -> ArchitectureZoo:
    """One edge-heavy entry (Communicate first: the edge does all the work)."""
    arch = Architecture(ops=(
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=KNN_K),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, COMBINE_WIDTH),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name=ENTRY)
    return ArchitectureZoo([ZooEntry(ENTRY, arch, 0.9, 50.0, 0.5)])


def build_frames() -> List[Batch]:
    graphs = SyntheticModelNet40(num_points=NUM_POINTS, samples_per_class=2,
                                 num_classes=10, seed=0).generate()
    return [Batch.from_graphs([graph]) for graph in graphs[:20]]


def run_once(zoo: ArchitectureZoo, frames: List[Batch],
             num_nodes: int) -> Tuple[float, EdgeServerStats]:
    """Steady-state aggregate fps of NUM_CLIENTS pipelines for one fleet."""
    client_config = ClientConfig(wire_format="raw", pipeline_timeout_s=300.0)
    failures: List[BaseException] = []
    with contextlib.ExitStack() as stack:
        nodes = [stack.enter_context(NodeProcess(node_id))
                 for node_id in range(num_nodes)]
        config = ServingConfig(
            cluster=ClusterConfig(
                nodes=tuple(node.address for node in nodes)),
            server={"max_workers": NUM_CLIENTS})
        with serve(zoo, config, in_dim=3, num_classes=10) as app:
            def run_client(index: int) -> None:
                try:
                    with app.client(model=ENTRY, name=f"bench-{index}",
                                    config=client_config) as client:
                        sequence = [frames[i % len(frames)]
                                    for i in range(FRAMES_PER_CLIENT)]
                        results, _ = client.run(sequence)
                        assert len(results) == FRAMES_PER_CLIENT
                except BaseException as exc:
                    failures.append(exc)

            threads = [threading.Thread(target=run_client, args=(i,))
                       for i in range(NUM_CLIENTS)]
            for thread in threads:
                thread.start()
            total = NUM_CLIENTS * FRAMES_PER_CLIENT
            low_mark, high_mark = (int(total * fraction)
                                   for fraction in WINDOW)
            low_at = high_at = None
            deadline = time.monotonic() + 600.0
            while high_at is None and time.monotonic() < deadline:
                served = app.server.frames_processed
                now = time.perf_counter()
                if low_at is None and served >= low_mark:
                    low_at = now
                if served >= high_mark:
                    high_at = now
                time.sleep(0.002)
            for thread in threads:
                thread.join(timeout=600.0)
            stats = app.stats()
    if failures:
        raise RuntimeError(f"{len(failures)} client(s) failed: {failures[0]}")
    if low_at is None or high_at is None:
        raise RuntimeError("steady-state window never completed")
    return (high_mark - low_mark) / (high_at - low_at), stats


def node_counts() -> List[int]:
    cores = os.cpu_count() or 1
    return [count for count in NODE_COUNTS if count == 1 or count <= cores]


def run_sweep(counts: Sequence[int] = None
              ) -> Dict[int, Tuple[float, EdgeServerStats]]:
    counts = list(counts) if counts is not None else node_counts()
    zoo, frames = build_zoo(), build_frames()
    run_once(zoo, frames, 1)  # warm up allocators/BLAS before timing
    results: Dict[int, Tuple[float, EdgeServerStats]] = {}
    for count in counts:
        results[count] = run_once(zoo, frames, count)
    return results


def sweep_table(results: Dict[int, Tuple[float, EdgeServerStats]]) -> str:
    base_fps = results[min(results)][0]
    rows = []
    for count, (fps, stats) in sorted(results.items()):
        node_frames = [node.frames for node in stats.nodes]
        rows.append([count, fps, fps / base_fps,
                     "-".join(str(n) for n in node_frames)])
    return format_table(
        ["nodes", "aggregate_fps", "speedup_vs_1node", "frames_per_node"],
        rows,
        title="Multi-node cluster scaling, steady-state aggregate "
              f"throughput ({NUM_CLIENTS} clients, {FRAMES_PER_CLIENT} "
              f"frames/client, {NUM_POINTS}-point clouds, k={KNN_K}, "
              f"{os.cpu_count()} cores)")


def sweep_json(results: Dict[int, Tuple[float, EdgeServerStats]],
               note: str = "") -> Dict:
    """JSON twin of the sweep; ``note`` records why scaling points are
    absent (core constraints), so a missing result is distinguishable
    from a broken bench when diffing CI artifacts."""
    payload: Dict = {
        "bench": "cluster_scaling",
        "cpu_count": os.cpu_count(),
        "clients": NUM_CLIENTS,
        "frames_per_client": FRAMES_PER_CLIENT,
        "num_points": NUM_POINTS,
        "knn_k": KNN_K,
        "note": note or None,
        "nodes": {},
    }
    if results:
        base_fps = results[min(results)][0]
        for count, (fps, stats) in sorted(results.items()):
            payload["nodes"][str(count)] = {
                "aggregate_fps": fps,
                "speedup_vs_1node": fps / base_fps,
                "frames_per_node": [node.frames for node in stats.nodes],
                "node_service_time_s": [node.service_time_s
                                        for node in stats.nodes],
                "bytes_to_nodes": sum(node.bytes_to_node
                                      for node in stats.nodes),
                "bytes_from_nodes": sum(node.bytes_from_node
                                        for node in stats.nodes),
            }
    return payload


def check_speedup(results: Dict[int, Tuple[float, EdgeServerStats]]) -> None:
    """Nodes must pay on multi-core machines (loose CI thresholds)."""
    cores = os.cpu_count() or 1
    base = results[1][0]
    for count, (fps, stats) in results.items():
        # Every node actually served traffic and none crashed.
        assert len(stats.nodes) == count
        assert all(node.alive for node in stats.nodes)
        assert all(node.frames > 0 for node in stats.nodes), (
            f"idle node at num_nodes={count}: "
            f"{[n.frames for n in stats.nodes]}")
    if cores >= 4 and 2 in results:
        assert results[2][0] >= THRESHOLD_2_NODES * base, (
            f"2-node speedup below {THRESHOLD_2_NODES}x: "
            f"{results[2][0]:.1f} vs {base:.1f} fps on {cores} cores")
    if cores >= 8 and 4 in results:
        assert results[4][0] >= THRESHOLD_4_NODES * base, (
            f"4-node speedup below {THRESHOLD_4_NODES}x: "
            f"{results[4][0]:.1f} vs {base:.1f} fps on {cores} cores")


def _scaling_note() -> str:
    cores = os.cpu_count() or 1
    dropped = [count for count in NODE_COUNTS if count not in node_counts()]
    if dropped:
        return (f"node counts {dropped} dropped: {cores} core(s) — "
                "localhost nodes beyond the core count only time-slice")
    return ""


def test_cluster_scaling(benchmark):
    from conftest import save_json, save_report
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_report("cluster_scaling.txt", sweep_table(results))
    save_json("cluster_scaling.json", sweep_json(results,
                                                 note=_scaling_note()))
    check_speedup(results)


def main() -> None:
    import sys
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import save_json, save_report
    results = run_sweep()
    save_report("cluster_scaling.txt", sweep_table(results))
    save_json("cluster_scaling.json", sweep_json(results,
                                                 note=_scaling_note()))
    check_speedup(results)
    best = max(results)
    print(f"\ncluster scaling check passed: {best} node(s) serve "
          f"{results[best][0] / results[1][0]:.2f}x the frames/s of the "
          "1-node fleet")


if __name__ == "__main__":
    main()
