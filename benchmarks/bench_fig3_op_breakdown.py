"""Figure 3: DGCNN execution-time breakdown across devices on ModelNet40 and MR.

Regenerates the per-device percentage breakdown of KNN (Sample), Aggregate and
Combine time for DGCNN on both applications — the hardware-sensitivity
observation that motivates GCoDE's system performance awareness.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import MODELNET_PROFILE, MR_PROFILE, save_report

from repro.baselines import dgcnn_architecture
from repro.evaluation import format_table
from repro.gnn import OpType
from repro.hardware import all_devices, trace_workloads

GROUPS = {
    OpType.SAMPLE: "KNN",
    OpType.AGGREGATE: "Aggregate",
    OpType.COMBINE: "Combine",
    OpType.CLASSIFIER: "Combine",
    OpType.GLOBAL_POOL: "Other",
    OpType.IDENTITY: "Other",
}


def breakdown_for(device, profile):
    arch = dgcnn_architecture()
    workloads = trace_workloads(arch.ops, profile, arch.classifier_hidden)
    shares = defaultdict(float)
    for workload in workloads:
        shares[GROUPS[workload.spec.op]] += device.op_latency_ms(
            workload, arch.classifier_hidden)
    total = sum(shares.values())
    return {group: 100.0 * value / total for group, value in shares.items()}, total


def build_table():
    rows = []
    for profile, label in ((MODELNET_PROFILE, "ModelNet40"), (MR_PROFILE, "MR")):
        for device in all_devices():
            shares, total = breakdown_for(device, profile)
            rows.append([label, device.name, total,
                         shares.get("KNN", 0.0), shares.get("Aggregate", 0.0),
                         shares.get("Combine", 0.0), shares.get("Other", 0.0)])
    return rows


def test_fig3_execution_breakdown(benchmark):
    rows = benchmark(build_table)
    text = format_table(
        ["dataset", "device", "total_ms", "KNN_%", "Aggregate_%", "Combine_%",
         "Other_%"],
        rows, title="Figure 3: DGCNN execution-time breakdown per device")
    save_report("fig3_op_breakdown.txt", text)

    by_key = {(row[0], row[1]): row for row in rows}
    # KNN dominates on both GPUs for ModelNet40.
    for gpu in ("jetson_tx2", "nvidia_1060"):
        assert by_key[("ModelNet40", gpu)][3] > 40.0
    # Aggregate is the bottleneck on the i7 for ModelNet40 ...
    i7_modelnet = by_key[("ModelNet40", "intel_i7")]
    assert i7_modelnet[4] > i7_modelnet[3] and i7_modelnet[4] > i7_modelnet[5]
    # ... while Combine dominates on the i7 for MR.
    i7_mr = by_key[("MR", "intel_i7")]
    assert i7_mr[5] > i7_mr[3] and i7_mr[5] > i7_mr[4]
    # The Pi is the slowest platform on ModelNet40.
    assert by_key[("ModelNet40", "raspberry_pi_4b")][2] == max(
        by_key[("ModelNet40", device.name)][2] for device in all_devices())
