"""Table 2: ModelNet40 comparison of GCoDE against all baselines.

Regenerates the paper's main table: accuracy, latency and on-device energy of
DGCNN, Li et al., HGNAS (device/edge-only), BRANCHY-GNN, HGNAS+Partition and
GCoDE on the four device-edge configurations at 40 and 10 Mbps, plus the
speedup / energy-reduction columns relative to DGCNN Device-Only.
"""

from __future__ import annotations

import pytest

from conftest import LINKS, SYSTEM_PAIRS, save_report
from methods import modelnet_method_rows

from repro.evaluation import energy_reduction, format_table, speedup


@pytest.fixture(scope="module")
def table_rows(modelnet_space, modelnet_accuracy):
    all_rows = []
    for link_label, link in LINKS.items():
        for device, edge, pair_label in SYSTEM_PAIRS:
            rows = modelnet_method_rows(modelnet_space, modelnet_accuracy,
                                        device, edge, link)
            reference = next(r for r in rows if r.method == "DGCNN" and r.mode == "D")
            for row in rows:
                all_rows.append([link_label, pair_label, row.method, row.mode,
                                 row.accuracy * 100.0, row.latency_ms,
                                 row.device_energy_j,
                                 speedup(reference.latency_ms, row.latency_ms),
                                 energy_reduction(reference.device_energy_j,
                                                  row.device_energy_j) * 100.0])
    return all_rows


def test_table2_modelnet40_comparison(benchmark, table_rows):
    benchmark.pedantic(lambda: table_rows, rounds=1, iterations=1)
    text = format_table(
        ["uplink", "system", "method", "mode", "acc_%", "latency_ms",
         "energy_J", "speedup_x", "energy_saving_%"],
        table_rows, title="Table 2: ModelNet40 device-edge comparison")
    save_report("table2_modelnet40.txt", text)

    def rows_for(link, system, method, mode=None):
        return [r for r in table_rows
                if r[0] == link and r[1] == system and r[2] == method
                and (mode is None or r[3] == mode)]

    for link in LINKS:
        for _, _, system in SYSTEM_PAIRS:
            gcode = rows_for(link, system, "GCoDE")[0]
            dgcnn_d = rows_for(link, system, "DGCNN", "D")[0]
            branchy = rows_for(link, system, "BRANCHY")[0]
            hgnas_part = rows_for(link, system, "HGNAS+Partition")[0]
            # GCoDE is faster than DGCNN device-only, BRANCHY and the
            # architecture-mapping-separated HGNAS+Partition on every system.
            assert gcode[5] < dgcnn_d[5]
            assert gcode[5] < branchy[5]
            assert gcode[5] <= hgnas_part[5] * 1.05
            # ... and saves most of the device energy.
            assert gcode[8] > 50.0

    # Headline shape: the largest speedup appears on the weak-device /
    # strong-edge / fast-link configuration (Pi -> 1060 at 40 Mbps) and is
    # roughly an order of magnitude or more.
    headline = rows_for("40mbps", "Pi->1060", "GCoDE")[0][7]
    assert headline > 10.0
