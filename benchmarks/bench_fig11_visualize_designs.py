"""Figure 11: visualization of the GNNs designed by GCoDE for the TX2-i7 system.

Regenerates the operation/placement listing of the best architecture GCoDE
finds for ModelNet40 and for MR on the Jetson TX2 ⇌ Intel i7 configuration,
and checks the qualitative insight of the paper: the searched designs place
the operations that are inefficient on the device on the edge (and vice
versa) and are much simpler than the hand-designed DGCNN.
"""

from __future__ import annotations

import pytest

from conftest import MODELNET_PROFILE, MR_PROFILE, save_report
from methods import run_gcode

from repro.baselines import dgcnn_architecture
from repro.evaluation import format_architecture
from repro.gnn import OpType
from repro.hardware import JETSON_TX2, INTEL_I7, LINK_40MBPS


@pytest.fixture(scope="module")
def designs(modelnet_space, mr_space, modelnet_accuracy, mr_accuracy):
    modelnet = run_gcode(modelnet_space, modelnet_accuracy, JETSON_TX2, INTEL_I7,
                         LINK_40MBPS, MODELNET_PROFILE).top_k(1, "latency")[0]
    mr = run_gcode(mr_space, mr_accuracy, JETSON_TX2, INTEL_I7, LINK_40MBPS,
                   MR_PROFILE).top_k(1, "latency")[0]
    return modelnet, mr


def test_fig11_designed_architectures(benchmark, designs):
    modelnet, mr = designs
    benchmark.pedantic(lambda: (modelnet.architecture.describe(),
                                mr.architecture.describe()),
                       rounds=3, iterations=1)
    text = "\n\n".join([
        format_architecture(modelnet.architecture.describe(),
                            title=("Figure 11(a): GCoDE design for TX2-i7 on "
                                   f"ModelNet40 ({modelnet.latency_ms:.1f} ms)")),
        format_architecture(mr.architecture.describe(),
                            title=("Figure 11(b): GCoDE design for TX2-i7 on "
                                   f"MR ({mr.latency_ms:.1f} ms)")),
    ])
    save_report("fig11_designs.txt", text)

    # The searched designs are markedly simpler than DGCNN (fewer non-trivial
    # operations), as the paper highlights.
    def real_ops(arch):
        return [op for op in arch.ops
                if op.op not in (OpType.IDENTITY, OpType.COMMUNICATE)]

    assert len(real_ops(modelnet.architecture)) < len(dgcnn_architecture().ops)

    # On ModelNet40 the expensive KNN/Aggregate work should not stay on the
    # TX2 device if a Communicate is used; on MR the wide Combine work should
    # not run on the i7-side exclusively.  At minimum, the chosen designs are
    # co-inference designs that satisfy the latency objective.
    assert modelnet.latency_ms < 242.0  # better than DGCNN device-only on TX2
    assert mr.latency_ms < 30.0         # better than the MR baselines
