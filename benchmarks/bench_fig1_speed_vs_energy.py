"""Figure 1: inference speed (fps) vs on-device energy, Pi 4B and Jetson TX2.

Regenerates the headline scatter: frames-per-second against per-inference
device energy for DGCNN, BRANCHY-GNN, HGNAS and GCoDE with the Raspberry Pi
4B and the Jetson TX2 as device (Nvidia 1060 edge, 40 Mbps uplink).  GCoDE's
point must dominate every baseline on both axes, with speedup and energy
savings of the same order as the paper's annotations (11.5× / 92.3% on the
Pi 4B plot, 44.9× / 98.2% on the Jetson TX2 plot — note the paper's axis
labels attach those annotations to the two plots in that order).
"""

from __future__ import annotations

import pytest

from conftest import MODELNET_PROFILE, save_report, simulator_for
from methods import modelnet_method_rows

from repro.evaluation import energy_reduction, format_table
from repro.hardware import JETSON_TX2, RASPBERRY_PI_4B, NVIDIA_1060, LINK_40MBPS


@pytest.fixture(scope="module")
def fig1_rows(modelnet_space, modelnet_accuracy):
    rows = []
    for device, label in ((RASPBERRY_PI_4B, "Pi 4B"), (JETSON_TX2, "Jetson TX2")):
        method_rows = modelnet_method_rows(modelnet_space, modelnet_accuracy,
                                           device, NVIDIA_1060, LINK_40MBPS)
        wanted = {("DGCNN", "D"), ("BRANCHY", "Co"), ("HGNAS", "D"), ("GCoDE", "Co")}
        for row in method_rows:
            if (row.method, row.mode) in wanted:
                rows.append([label, row.method, 1000.0 / row.latency_ms,
                             row.device_energy_j])
    return rows


def test_fig1_speed_vs_energy(benchmark, fig1_rows):
    benchmark.pedantic(lambda: fig1_rows, rounds=1, iterations=1)
    text = format_table(["device", "method", "speed_fps", "device_energy_J"],
                        fig1_rows,
                        title="Figure 1: inference speed vs device energy "
                              "(edge: Nvidia 1060, 40 Mbps)")
    save_report("fig1_speed_vs_energy.txt", text)

    for device_label in ("Pi 4B", "Jetson TX2"):
        subset = {row[1]: row for row in fig1_rows if row[0] == device_label}
        gcode, dgcnn = subset["GCoDE"], subset["DGCNN"]
        # GCoDE dominates every baseline in both speed and energy.
        for method, row in subset.items():
            if method == "GCoDE":
                continue
            assert gcode[2] > row[2]
            assert gcode[3] < row[3]
        # Order-of-magnitude headline: >5x faster and >80% energy savings
        # against DGCNN device-only on both devices.
        assert gcode[2] / dgcnn[2] > 5.0
        assert energy_reduction(dgcnn[3], gcode[3]) > 0.80
