"""Figure 9: system-latency predictor accuracy across the four configurations.

Regenerates (a) the fraction of predictions within the ±5% / ±10% error bound
and (b) the relative-latency (pairwise ranking) accuracy of the GIN predictor
with enhanced node features, for each device-edge configuration.  The paper
reports 72.4–85.3% within ±10% and >94.7% ranking accuracy; the reproduction
checks the same qualitative level against its simulator ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import MODELNET_PROFILE, SYSTEM_PAIRS, save_report, simulator_for

from repro.core import (FeatureBuilder, LatencyPredictor, PredictorTrainer,
                        error_bound_accuracy, generate_predictor_dataset,
                        ranking_accuracy, split_samples)
from repro.evaluation import format_table
from repro.hardware import LINK_40MBPS, build_latency_lut

NUM_SAMPLES = 250
EPOCHS = 40


def train_and_score(space, device, edge):
    simulator = simulator_for(device, edge, LINK_40MBPS)
    builder = FeatureBuilder(build_latency_lut(device, MODELNET_PROFILE),
                             build_latency_lut(edge, MODELNET_PROFILE),
                             LINK_40MBPS, MODELNET_PROFILE, mode="enhanced")
    samples = generate_predictor_dataset(space, simulator, builder,
                                         num_samples=NUM_SAMPLES,
                                         noise_std=0.02, seed=0)
    train, val = split_samples(samples, 0.7, seed=0)
    predictor = LatencyPredictor(builder.feature_dim, hidden_dim=64, seed=0)
    trainer = PredictorTrainer(predictor, lr=3e-3)
    trainer.fit(train, epochs=EPOCHS, seed=0)
    predictions = trainer.predict_many(val)
    measured = np.array([s.latency_ms for s in val])
    return {
        "within_5pct": error_bound_accuracy(predictions, measured, 0.05) * 100.0,
        "within_10pct": error_bound_accuracy(predictions, measured, 0.10) * 100.0,
        "ranking": ranking_accuracy(predictions, measured) * 100.0,
    }


@pytest.fixture(scope="module")
def predictor_scores(modelnet_space):
    return {label: train_and_score(modelnet_space, device, edge)
            for device, edge, label in SYSTEM_PAIRS}


def test_fig9_predictor_accuracy(benchmark, predictor_scores):
    benchmark.pedantic(lambda: predictor_scores, rounds=1, iterations=1)
    rows = [[label, scores["within_5pct"], scores["within_10pct"], scores["ranking"]]
            for label, scores in predictor_scores.items()]
    text = format_table(["system", "within_±5%_%", "within_±10%_%",
                         "relative_ranking_%"], rows,
                        title="Figure 9: GIN latency-predictor accuracy")
    save_report("fig9_predictor_accuracy.txt", text)

    for label, scores in predictor_scores.items():
        # (a) a substantial fraction of predictions fall within the ±10% bound
        # (paper: 72.4–85.3% when trained on 9K architectures; this
        # reproduction trains on ~36x fewer, so the bar is relaxed);
        # (b) relative-latency ordering accuracy is high (paper: >94.7%).
        assert scores["within_10pct"] >= 30.0, label
        assert scores["ranking"] >= 88.0, label
