"""Precision x kernel-backend sweep, measured in ms AND joules per frame.

Sweeps the edge-side serving hot path (the same representative two-block /
one-block entries as ``bench_inference_runtime.py``) over every execution
precision (float64 / float32 / calibrated int8) and every kernel backend
available in this process (numpy always; numba when installed).  For each
cell it reports:

* single-frame and batched median ms per frame (edge segment only);
* the accuracy cost vs the float64/numpy reference — max abs logit
  difference and argmax agreement over a gating set of frames (int8 must
  agree on >= 99% of frames, enforced here, not just reported);
* **estimated joules per frame** for the paper's device/edge split: edge
  energy from the Intel i7 compute model plus the device-side energy of a
  Jetson TX2 that uploads the wire states over a 40 Mbps link and then
  idles while the edge computes (the co-inference energy model of
  :mod:`repro.hardware.energy`).

Results land in ``benchmarks/results/precision_backends.json`` (with the
hardware envelope stamped) so CI can track the int8 payoff over time; the
perf-smoke gate only requires a loose 1.3x batched int8-vs-float32 margin
because CI machines are noisy — measured numbers on idle hardware are
reported in the JSON and README.

Run standalone:  PYTHONPATH=src python benchmarks/bench_precision_backends.py
or via pytest:   PYTHONPATH=src python -m pytest benchmarks/bench_precision_backends.py -q
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from repro.core import Architecture, ArchitectureModel
from repro.gnn import OpSpec, OpType
from repro.graph import SyntheticModelNet40
from repro.graph.data import Batch
from repro.hardware import (INTEL_I7, JETSON_TX2, LINK_40MBPS,
                            estimate_device_energy)
from repro.runtime import PRECISIONS, available_backends
from repro.serving import RuntimeConfig, build_callables
from repro.system import WIRE_FORMAT_RAW, compressed_size

#: Serving scenario: 64-point clouds with the paper's DGCNN neighbourhood
#: (k=20) and a 96-wide combine — heavy enough that kernel cost, not the
#: shared kNN construction, dominates the edge segment.
NUM_POINTS = 64
KNN_K = 20
COMBINE_WIDTH = 96
BATCH_FRAMES = 16
ROUNDS = 5
FRAMES_PER_ROUND = 192
#: Frames scored for the accuracy gate (argmax agreement vs float64).
GATING_FRAMES = 24
#: Logit margin below which the reference's own top-2 classes count as a
#: tie.  The gating model is untrained, so many frames are near-ties; a
#: "flip" whose reference margin is under this floor says nothing about
#: quantization quality (the raw agreement is still recorded in the JSON).
TIE_MARGIN = 0.01

#: CI gate: batched int8 (numpy) must beat batched float32 (numpy) by at
#: least this factor on the headline entry.  Loose on purpose — the point
#: is catching the quantized path degrading to float-level cost.
MIN_INT8_BATCHED_SPEEDUP = 1.3
#: CI gate: int8 classification agreement with the float64 reference.
MIN_INT8_AGREEMENT = 0.99

REFERENCE = ("float64", "numpy")

ENTRIES = {
    "edge-2block": Architecture(ops=(
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=KNN_K),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, COMBINE_WIDTH),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, COMBINE_WIDTH),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name="edge-2block"),
    "edge-1block": Architecture(ops=(
        OpSpec(OpType.COMMUNICATE, "uplink"),
        OpSpec(OpType.SAMPLE, "knn", k=KNN_K),
        OpSpec(OpType.AGGREGATE, "max"),
        OpSpec(OpType.COMBINE, COMBINE_WIDTH),
        OpSpec(OpType.GLOBAL_POOL, "max||mean"),
    ), name="edge-1block"),
}
HEADLINE = "edge-2block"


def _median_ms_per_frame(fn: Callable[[], None], frames_per_call: int) -> float:
    fn()  # warm arenas, calibration caches and (for numba) jit compiles
    samples = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for _ in range(FRAMES_PER_ROUND // frames_per_call):
            fn()
        elapsed = time.perf_counter() - started
        samples.append(elapsed / FRAMES_PER_ROUND * 1e3)
    return sorted(samples)[len(samples) // 2]


def _joules_per_frame(edge_ms: float, wire_bytes: int) -> Dict[str, float]:
    """Co-inference energy: edge compute + device upload-then-idle."""
    edge_j = INTEL_I7.compute_energy_j(edge_ms)
    device = estimate_device_energy(JETSON_TX2, LINK_40MBPS,
                                    device_busy_ms=0.0,
                                    device_idle_ms=edge_ms,
                                    uploaded_bytes=wire_bytes)
    return {
        "edge_compute_j": round(edge_j, 6),
        "device_idle_j": round(device.idle_j, 6),
        "device_comm_j": round(device.comm_j, 6),
        "total_j": round(edge_j + device.total_j, 6),
    }


def bench_entry(name: str, architecture: Architecture) -> Dict:
    """One precision x backend sweep over one zoo entry's edge segment."""
    graphs = SyntheticModelNet40(num_points=NUM_POINTS, samples_per_class=4,
                                 num_classes=10, seed=0).generate()
    frames = [Batch.from_graphs([graph]) for graph in graphs[:GATING_FRAMES]]
    # Post-training calibration uses *representative* frames from the same
    # distribution as the gating set (but disjoint from it) — the supported
    # deployment recipe; the synthetic default trades a little accuracy for
    # replica determinism.
    calibration_frames = [Batch.from_graphs([graph])
                          for graph in graphs[GATING_FRAMES:]]

    def build(precision: str, backend: str):
        model = ArchitectureModel(architecture, in_dim=3, num_classes=10,
                                  seed=0)
        config = RuntimeConfig(runtime="compiled", precision=precision,
                               backend=backend)
        return build_callables(model, config,
                               calibration_frames=calibration_frames)

    reference = build(*REFERENCE)
    requests = [reference.device_fn(frame) for frame in frames]
    wire_bytes = compressed_size(requests[0][0], wire_format=WIRE_FORMAT_RAW)
    reference_logits = [reference.edge_fn(dict(arrays), dict(meta))[0]["logits"]
                        for arrays, meta in requests]
    reference_amax = max(float(np.max(np.abs(l))) for l in reference_logits)

    rows: List[Dict] = []
    for precision in PRECISIONS:
        for backend in available_backends():
            entry = build(precision, backend)
            logits = [entry.edge_fn(dict(arrays), dict(meta))[0]["logits"]
                      for arrays, meta in requests]
            max_diff = max(float(np.max(np.abs(got - ref)))
                           for got, ref in zip(logits, reference_logits))
            raw_hits = decisive_hits = 0
            for got, ref in zip(logits, reference_logits):
                match = np.argmax(got) == np.argmax(ref)
                raw_hits += int(match)
                # A disagreement only counts against the precision when the
                # reference itself was decisive: the margin between its
                # choice and the quantized path's choice clears TIE_MARGIN.
                margin = float(np.max(ref) - ref.ravel()[np.argmax(got)])
                decisive_hits += int(match or margin <= TIE_MARGIN)
            agreement = decisive_hits / len(logits)
            raw_agreement = raw_hits / len(logits)
            arrays, meta = requests[0]
            single_ms = _median_ms_per_frame(
                lambda: entry.edge_fn(arrays, meta), 1)
            batch_requests = requests[:BATCH_FRAMES]
            batched_ms = _median_ms_per_frame(
                lambda: entry.batch_fn(batch_requests), BATCH_FRAMES)
            rows.append({
                "precision": precision,
                "backend": backend,
                "single_frame_ms": round(single_ms, 4),
                "batched_ms_per_frame": round(batched_ms, 4),
                "max_abs_logit_diff_vs_float64": max_diff,
                "argmax_agreement_vs_float64": agreement,
                "raw_argmax_agreement_vs_float64": raw_agreement,
                "energy_single_frame": _joules_per_frame(single_ms,
                                                         wire_bytes),
                "energy_batched_per_frame": _joules_per_frame(batched_ms,
                                                              wire_bytes),
            })
    return {
        "wire_bytes_raw": wire_bytes,
        "gating_frames": len(frames),
        "reference_logit_amax": round(reference_amax, 4),
        "rows": rows,
    }


def _row(entry: Dict, precision: str, backend: str) -> Dict:
    for row in entry["rows"]:
        if row["precision"] == precision and row["backend"] == backend:
            return row
    raise KeyError((precision, backend))


def run_benchmark() -> Dict:
    return {
        "config": {
            "num_points": NUM_POINTS, "knn_k": KNN_K,
            "combine_width": COMBINE_WIDTH, "rounds": ROUNDS,
            "frames_per_round": FRAMES_PER_ROUND,
            "batch_frames": BATCH_FRAMES,
            "headline_entry": HEADLINE,
            "backends": list(available_backends()),
            "min_int8_batched_speedup": MIN_INT8_BATCHED_SPEEDUP,
            "min_int8_agreement": MIN_INT8_AGREEMENT,
            "tie_margin": TIE_MARGIN,
            "energy_model": {
                "edge": "intel_i7 compute",
                "device": "jetson_tx2 upload + idle-while-edge-computes",
                "link": "40mbps",
            },
        },
        "entries": {name: bench_entry(name, architecture)
                    for name, architecture in ENTRIES.items()},
    }


def check_gates(results: Dict) -> None:
    headline = results["entries"][HEADLINE]
    int8 = _row(headline, "int8", "numpy")
    float32 = _row(headline, "float32", "numpy")
    speedup = (float32["batched_ms_per_frame"]
               / int8["batched_ms_per_frame"])
    assert speedup >= MIN_INT8_BATCHED_SPEEDUP, (
        f"batched int8 speedup vs float32 regressed: {speedup:.2f}x < "
        f"{MIN_INT8_BATCHED_SPEEDUP}x")
    for entry_name, entry in results["entries"].items():
        for row in entry["rows"]:
            if row["precision"] != "int8":
                continue
            agreement = row["argmax_agreement_vs_float64"]
            assert agreement >= MIN_INT8_AGREEMENT, (
                f"{entry_name} int8/{row['backend']}: argmax agreement "
                f"{agreement:.3f} < {MIN_INT8_AGREEMENT}")


def format_summary(results: Dict) -> str:
    lines = [f"precision x backend sweep ({NUM_POINTS}-point clouds, "
             f"k={KNN_K}, median of {ROUNDS}; energy: i7 edge + TX2 device "
             "over 40 Mbps)"]
    for name, entry in results["entries"].items():
        lines.append(f"  {name} (wire {entry['wire_bytes_raw']} B):")
        for row in entry["rows"]:
            lines.append(
                f"    {row['precision']:8s}/{row['backend']:5s} "
                f"single {row['single_frame_ms']:7.3f} ms "
                f"batched {row['batched_ms_per_frame']:7.3f} ms/frame "
                f"{row['energy_batched_per_frame']['total_j'] * 1e3:8.3f} "
                f"mJ/frame  agree {row['argmax_agreement_vs_float64']:.3f} "
                f"maxdiff {row['max_abs_logit_diff_vs_float64']:.2e}")
    headline = results["entries"][HEADLINE]
    int8 = _row(headline, "int8", "numpy")
    float32 = _row(headline, "float32", "numpy")
    lines.append(
        f"  headline: batched int8 vs float32 "
        f"{float32['batched_ms_per_frame'] / int8['batched_ms_per_frame']:.2f}x, "
        f"energy {float32['energy_batched_per_frame']['total_j'] / int8['energy_batched_per_frame']['total_j']:.2f}x")
    return "\n".join(lines)


def test_precision_backends(benchmark):
    from conftest import save_json
    results = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    save_json("precision_backends.json", results)
    print(format_summary(results))
    check_gates(results)


def main() -> None:
    from conftest import save_json
    results = run_benchmark()
    path = save_json("precision_backends.json", results)
    print(format_summary(results))
    check_gates(results)
    print(f"\nresults written to {path}")
    headline = results["entries"][HEADLINE]
    speedup = (_row(headline, "float32", "numpy")["batched_ms_per_frame"]
               / _row(headline, "int8", "numpy")["batched_ms_per_frame"])
    print(f"perf-smoke passed: {speedup:.2f}x batched int8 edge inference")


if __name__ == "__main__":
    main()
