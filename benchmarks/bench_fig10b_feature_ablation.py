"""Figure 10(b): predictor ablation — enhanced features vs one-hot vs LUT vs GCN.

Regenerates the within-±10% prediction accuracy of four performance-awareness
variants on two representative system configurations:

* GIN + enhanced node features (the GCoDE predictor),
* GIN + one-hot features (HGNAS-style encoding),
* the training-free LUT cost estimator,
* GCN + enhanced features.

The paper's finding: the enhanced features matter most (one-hot collapses in
heterogeneous systems), GIN beats GCN, and the LUT estimator ranks well but
misses absolute latency because it ignores runtime overheads.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import MODELNET_PROFILE, save_report, simulator_for

from repro.core import (CostEstimator, FeatureBuilder, LatencyPredictor,
                        PredictorTrainer, error_bound_accuracy,
                        generate_predictor_dataset, ranking_accuracy,
                        split_samples)
from repro.core.predictor.gin_predictor import PredictorSample
from repro.evaluation import format_table
from repro.hardware import (JETSON_TX2, RASPBERRY_PI_4B, INTEL_I7, NVIDIA_1060,
                            LINK_40MBPS, build_latency_lut)

CONFIGS = [(JETSON_TX2, INTEL_I7, "TX2->i7"),
           (RASPBERRY_PI_4B, NVIDIA_1060, "Pi->1060")]
NUM_SAMPLES = 200
EPOCHS = 30


def evaluate_variants(space, device, edge):
    simulator = simulator_for(device, edge, LINK_40MBPS)
    device_lut = build_latency_lut(device, MODELNET_PROFILE)
    edge_lut = build_latency_lut(edge, MODELNET_PROFILE)
    enhanced = FeatureBuilder(device_lut, edge_lut, LINK_40MBPS, MODELNET_PROFILE,
                              mode="enhanced")
    one_hot = FeatureBuilder(device_lut, edge_lut, LINK_40MBPS, MODELNET_PROFILE,
                             mode="one-hot")

    samples = generate_predictor_dataset(space, simulator, enhanced,
                                         num_samples=NUM_SAMPLES, noise_std=0.02,
                                         seed=0)
    train, val = split_samples(samples, 0.7, seed=0)
    measured = np.array([s.latency_ms for s in val])

    def retarget(sample_list, builder):
        out = []
        for sample in sample_list:
            features, edges = builder.build(sample.architecture)
            out.append(PredictorSample(sample.architecture, features, edges,
                                       sample.latency_ms))
        return out

    def fit_and_score(builder, layer_type):
        predictor = LatencyPredictor(builder.feature_dim, hidden_dim=64,
                                     layer_type=layer_type, seed=0)
        trainer = PredictorTrainer(predictor, lr=3e-3)
        trainer.fit(retarget(train, builder), epochs=EPOCHS, seed=0)
        predictions = trainer.predict_many(retarget(val, builder))
        return (error_bound_accuracy(predictions, measured, 0.10) * 100.0,
                ranking_accuracy(predictions, measured) * 100.0)

    estimator = CostEstimator(device_lut, edge_lut, LINK_40MBPS, MODELNET_PROFILE)
    lut_predictions = np.array([estimator.estimate_latency_ms(s.architecture)
                                for s in val])
    scores = {
        "GIN+enhanced": fit_and_score(enhanced, "gin"),
        "GIN+one-hot": fit_and_score(one_hot, "gin"),
        "GCN+enhanced": fit_and_score(enhanced, "gcn"),
        "LUT": (error_bound_accuracy(lut_predictions, measured, 0.10) * 100.0,
                ranking_accuracy(lut_predictions, measured) * 100.0),
    }
    return scores


@pytest.fixture(scope="module")
def ablation_scores(modelnet_space):
    return {label: evaluate_variants(modelnet_space, device, edge)
            for device, edge, label in CONFIGS}


def test_fig10b_feature_ablation(benchmark, ablation_scores):
    benchmark.pedantic(lambda: ablation_scores, rounds=1, iterations=1)
    rows = []
    for system, scores in ablation_scores.items():
        for variant, (within10, ranking) in scores.items():
            rows.append([system, variant, within10, ranking])
    text = format_table(["system", "variant", "within_±10%_%", "ranking_%"], rows,
                        title="Figure 10(b): performance-awareness ablation")
    save_report("fig10b_feature_ablation.txt", text)

    for system, scores in ablation_scores.items():
        gin_enhanced = scores["GIN+enhanced"]
        # Enhanced features beat the one-hot encoding at capturing the
        # relative latency of candidates in heterogeneous systems.
        assert gin_enhanced[1] >= scores["GIN+one-hot"][1], system
        assert gin_enhanced[1] >= 85.0, system
        # The training-free LUT estimator keeps good relative accuracy
        # (paper: >88%).  Note that in this reproduction the "measured"
        # ground truth comes from the same analytical hardware model the LUT
        # is built from, so the LUT scores higher here than on a physical
        # testbed — see EXPERIMENTS.md.
        assert scores["LUT"][1] >= 80.0, system
