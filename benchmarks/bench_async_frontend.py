"""Async frontend: idle-connection scaling and QoS overload behavior.

Two claims of the transport/scheduling split, measured:

**Idle-connection scaling.**  The threaded frontend pins one handler thread
(and one ``max_workers`` slot) per connection, so a fleet of mostly-idle
devices starves the active ones long before the machine is busy.  The
asyncio frontend multiplexes every connection on one event loop; this bench
opens ~1000 idle connections (hello handshake, then silence) against a
small-``max_workers`` async server and shows a handful of *active* clients
still being served at full rate straight through the idle crowd.

**Overload with and without shedding.**  A saturating client burst against
a deliberately slow entry, once with the historical unbounded queue and
once with ``QosPolicy(max_queue_depth=...)``.  Unbounded, every admitted
frame waits for the whole backlog ahead of it (p99 queue delay grows with
the burst); with shedding, queue delay stays bounded (p99 under 100 ms
here) and the overflow gets wire-level ``"rejected"`` replies within a
round-trip instead of timing out.

Both scenarios use a tiny numpy edge callable rather than a real zoo entry:
the subject is the transport and the admission queue, so engine time is
kept small and controlled.

Run standalone:  PYTHONPATH=src python benchmarks/bench_async_frontend.py
or via pytest:   PYTHONPATH=src python -m pytest benchmarks/bench_async_frontend.py -q
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.evaluation import format_table
from repro.system import DeviceClient, EdgeServer, QosPolicy
from repro.system.messages import Message, send_message

#: Idle-connection scenario.
IDLE_TARGET = 1000
ACTIVE_CLIENTS = 4
FRAMES_PER_ACTIVE = 50
#: The async server's compute pool — deliberately far below IDLE_TARGET:
#: under the threaded frontend this many workers could not even *accept*
#: the idle crowd, let alone serve the active clients through it.
ASYNC_MAX_WORKERS = 8

#: Overload scenario.
OVERLOAD_CLIENTS = 6
FRAMES_PER_OVERLOAD_CLIENT = 50
SERVICE_TIME_S = 0.02  # per batched engine call: ~6x oversubscribed
MAX_QUEUE_DEPTH = 8
#: Shedding must bound p99 queue delay below this (the unbounded run is
#: expected to blow far past it).
P99_BOUND_S = 0.100


def _echo_fn(arrays, meta):
    return {"y": arrays["x"] * 2.0}, meta


def _fd_budget(wanted: int) -> int:
    """Idle connections we can afford under the fd limit (scaled down,
    never failed: CI runners differ).  Tries to raise the soft limit to
    the hard limit first."""
    try:
        import resource
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < hard:
            try:
                resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
                soft = hard
            except (ValueError, OSError):
                pass
        # Client fd + server fd per connection, plus slack for the suite.
        return max(64, min(wanted, (soft - 256) // 2))
    except Exception:
        return min(wanted, 256)


def run_idle_scaling() -> Dict:
    """Active-client throughput with ~IDLE_TARGET idle connections parked."""
    idle_budget = _fd_budget(IDLE_TARGET)
    server = EdgeServer(_echo_fn, frontend="async",
                        max_workers=ASYNC_MAX_WORKERS,
                        backlog=min(512, idle_budget)).start()
    idle: List[socket.socket] = []
    frames = [np.random.default_rng(i).normal(size=(64,)).astype(np.float64)
              for i in range(8)]

    def active_rate() -> float:
        failures: List[BaseException] = []
        durations: List[float] = []

        def run_client(index: int) -> None:
            try:
                client = DeviceClient(server.host, server.port,
                                      client_name=f"active-{index}")
                try:
                    started = time.perf_counter()
                    results, _ = client.run_pipeline(
                        [frames[i % len(frames)]
                         for i in range(FRAMES_PER_ACTIVE)],
                        lambda frame: ({"x": frame}, {}), timeout_s=120.0)
                    durations.append(time.perf_counter() - started)
                    assert len(results) == FRAMES_PER_ACTIVE
                finally:
                    client.close()
            except BaseException as exc:
                failures.append(exc)

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(ACTIVE_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180.0)
        if failures:
            raise RuntimeError(f"active client failed: {failures[0]}")
        total = ACTIVE_CLIENTS * FRAMES_PER_ACTIVE
        return total / max(durations)

    try:
        baseline_fps = active_rate()
        # Park the idle crowd: connect + hello, then never speak again.
        for index in range(idle_budget):
            sock = socket.create_connection((server.host, server.port),
                                            timeout=10.0)
            send_message(sock, Message(kind="hello",
                                       meta={"client": f"idle-{index}"}))
            idle.append(sock)
        # Give the loop a beat to drain the hello backlog before timing.
        deadline = time.monotonic() + 30.0
        while (server.stats().active_sessions < idle_budget
               and time.monotonic() < deadline):
            time.sleep(0.05)
        crowded_fps = active_rate()
        stats = server.stats()
    finally:
        for sock in idle:
            try:
                sock.close()
            except OSError:
                pass
        server.stop()
    return {
        "idle_connections": idle_budget,
        "idle_target": IDLE_TARGET,
        "active_clients": ACTIVE_CLIENTS,
        "frames_per_active": FRAMES_PER_ACTIVE,
        "max_workers": ASYNC_MAX_WORKERS,
        "baseline_fps": baseline_fps,
        "crowded_fps": crowded_fps,
        "slowdown": baseline_fps / crowded_fps if crowded_fps else float("inf"),
        "peak_sessions": stats.active_sessions,
        "errors": stats.errors,
    }


def _slow_batch(items):
    time.sleep(SERVICE_TIME_S)
    return [({"y": arrays["x"] * 2.0}, meta) for arrays, meta in items]


def run_overload(qos: bool) -> Dict:
    """Saturating burst against a slow batched entry, with/without QoS."""
    policy = (QosPolicy(max_queue_depth=MAX_QUEUE_DEPTH, fairness=False)
              if qos else None)
    server = EdgeServer(_echo_fn, batch_fns={"default": _slow_batch},
                        max_batch_size=4, max_wait_ms=1.0,
                        frontend="async", max_workers=OVERLOAD_CLIENTS,
                        qos=policy).start()
    frame = np.ones((64,), dtype=np.float64)
    failures: List[BaseException] = []
    served = 0
    rejected = 0
    lock = threading.Lock()

    def run_client(index: int) -> None:
        nonlocal served, rejected
        try:
            client = DeviceClient(server.host, server.port,
                                  client_name=f"burst-{index}",
                                  on_rejected="drop")
            try:
                results, stats = client.run_pipeline(
                    [frame] * FRAMES_PER_OVERLOAD_CLIENT,
                    lambda f: ({"x": f}, {}), timeout_s=120.0)
                with lock:
                    served += len(results)
                    rejected += stats.frames_rejected
            finally:
                client.close()
        except BaseException as exc:
            failures.append(exc)

    threads = [threading.Thread(target=run_client, args=(i,))
               for i in range(OVERLOAD_CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180.0)
    wall = time.perf_counter() - started
    stats = server.stats()
    server.stop()
    if failures:
        raise RuntimeError(f"overload client failed: {failures[0]}")
    return {
        "qos": qos,
        "max_queue_depth": MAX_QUEUE_DEPTH if qos else None,
        "clients": OVERLOAD_CLIENTS,
        "frames_per_client": FRAMES_PER_OVERLOAD_CLIENT,
        "served": served,
        "rejected": rejected,
        "frames_shed": stats.frames_shed,
        "shed_by_reason": stats.shed_by_reason,
        "queue_delay_p50_s": stats.queue_delay_p50_s,
        "queue_delay_p99_s": stats.queue_delay_p99_s,
        "wall_time_s": wall,
    }


def result_table(idle: Dict, unbounded: Dict, shedding: Dict) -> str:
    rows = [
        ["idle-scaling", f"{idle['idle_connections']} idle conns",
         f"{idle['crowded_fps']:.0f}", f"{idle['slowdown']:.2f}x", "-", "-"],
        ["overload (unbounded)", f"{unbounded['clients']} bursting",
         f"{unbounded['served']}",
         "-", f"{unbounded['queue_delay_p99_s'] * 1000:.1f}",
         f"{unbounded['frames_shed']}"],
        ["overload (shed@%d)" % MAX_QUEUE_DEPTH,
         f"{shedding['clients']} bursting", f"{shedding['served']}",
         "-", f"{shedding['queue_delay_p99_s'] * 1000:.1f}",
         f"{shedding['frames_shed']}"],
    ]
    return format_table(
        ["scenario", "load", "frames_served", "slowdown", "p99_delay_ms",
         "frames_shed"],
        rows,
        title="Async frontend: idle-connection scaling and QoS overload "
              f"(pool={ASYNC_MAX_WORKERS}, service={SERVICE_TIME_S * 1000:.0f}"
              "ms/batch)")


def check(idle: Dict, unbounded: Dict, shedding: Dict) -> None:
    # The idle crowd must not collapse active throughput: the crowd holds
    # no compute slots, so a generous 3x bound absorbs scheduler noise.
    assert idle["errors"] == 0
    assert idle["slowdown"] <= 3.0, (
        f"{idle['idle_connections']} idle connections slowed active clients "
        f"{idle['slowdown']:.2f}x")
    # Unbounded overload must serve everything (nothing shed)...
    assert unbounded["frames_shed"] == 0
    assert unbounded["served"] == (OVERLOAD_CLIENTS
                                   * FRAMES_PER_OVERLOAD_CLIENT)
    # ...while shedding bounds the queue and answers the overflow.
    assert shedding["frames_shed"] > 0, "overload never tripped the shed"
    assert shedding["rejected"] == shedding["frames_shed"]
    assert shedding["served"] + shedding["rejected"] == (
        OVERLOAD_CLIENTS * FRAMES_PER_OVERLOAD_CLIENT)
    assert shedding["queue_delay_p99_s"] < P99_BOUND_S, (
        f"p99 queue delay {shedding['queue_delay_p99_s'] * 1000:.1f}ms "
        f"not bounded under shedding (limit {P99_BOUND_S * 1000:.0f}ms)")


def run_all() -> Tuple[Dict, Dict, Dict]:
    return run_idle_scaling(), run_overload(qos=False), run_overload(qos=True)


def test_async_frontend(benchmark):
    from conftest import save_json, save_report
    idle, unbounded, shedding = benchmark.pedantic(run_all, rounds=1,
                                                   iterations=1)
    save_report("async_frontend.txt", result_table(idle, unbounded, shedding))
    save_json("async_frontend.json", {
        "bench": "async_frontend",
        "idle_scaling": idle,
        "overload_unbounded": unbounded,
        "overload_shedding": shedding,
    })
    check(idle, unbounded, shedding)


def main() -> None:
    import os
    import sys
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import save_json, save_report
    idle, unbounded, shedding = run_all()
    save_report("async_frontend.txt", result_table(idle, unbounded, shedding))
    save_json("async_frontend.json", {
        "bench": "async_frontend",
        "idle_scaling": idle,
        "overload_unbounded": unbounded,
        "overload_shedding": shedding,
    })
    check(idle, unbounded, shedding)
    print(f"\nasync frontend check passed: {idle['idle_connections']} idle "
          f"connections at {idle['slowdown']:.2f}x slowdown; shedding "
          f"bounded p99 queue delay to "
          f"{shedding['queue_delay_p99_s'] * 1000:.1f}ms "
          f"({shedding['frames_shed']} frames shed cleanly)")


if __name__ == "__main__":
    main()
