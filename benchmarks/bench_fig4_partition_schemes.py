"""Figure 4: fixed partitioning schemes of DGCNN under different heterogeneities.

Regenerates the latency and on-device energy of representative partition
points of DGCNN (All-Edge, early/mid/late splits, All-Device) with the Jetson
TX2 as device and either edge platform, at 10 and 40 Mbps — showing that even
the best fixed split of a fixed architecture leaves large gains on the table.
"""

from __future__ import annotations

from conftest import MODELNET_PROFILE, save_report, simulator_for

from repro.baselines import dgcnn_architecture
from repro.evaluation import format_table
from repro.hardware import JETSON_TX2, INTEL_I7, NVIDIA_1060, LINK_10MBPS, LINK_40MBPS
from repro.system import evaluate_partitions


def build_rows():
    arch = dgcnn_architecture()
    rows = []
    for edge, edge_label in ((INTEL_I7, "Intel i7"), (NVIDIA_1060, "Nvidia 1060")):
        for link, link_label in ((LINK_10MBPS, "10 Mbps"), (LINK_40MBPS, "40 Mbps")):
            simulator = simulator_for(JETSON_TX2, edge, link)
            results = evaluate_partitions(arch.ops, MODELNET_PROFILE, simulator,
                                          classifier_hidden=arch.classifier_hidden)
            device_only = simulator.evaluate_device_only(
                arch.ops, MODELNET_PROFILE, arch.classifier_hidden)
            for result in results:
                rows.append([edge_label, link_label, result.label,
                             result.performance.latency_ms,
                             result.performance.device_energy_j])
            rows.append([edge_label, link_label, "all-device",
                         device_only.latency_ms, device_only.device_energy_j])
    return rows


def test_fig4_partition_schemes(benchmark):
    rows = benchmark(build_rows)
    text = format_table(
        ["edge", "uplink", "partition", "latency_ms", "device_energy_J"],
        rows, title="Figure 4: DGCNN partition schemes (Jetson TX2 as device)")
    save_report("fig4_partition_schemes.txt", text)

    def best(edge, link):
        subset = [r for r in rows if r[0] == edge and r[1] == link]
        return min(r[3] for r in subset), next(r[3] for r in subset
                                               if r[2] == "all-device")

    # The paper's Fig. 4 point: fixed partitioning of a fixed architecture
    # brings only limited gains.  With the strong Nvidia 1060 edge the best
    # split beats keeping everything on the TX2; with the Intel i7 edge (which
    # is slower than the TX2 on DGCNN's KNN-heavy profile) even the best split
    # barely improves on all-device execution.  Faster links never hurt.
    best_1060_40, device_only = best("Nvidia 1060", "40 Mbps")
    assert best_1060_40 < device_only
    best_i7_40, device_only_i7 = best("Intel i7", "40 Mbps")
    assert best_i7_40 <= device_only_i7 * 1.05
    for edge in ("Intel i7", "Nvidia 1060"):
        best40, _ = best(edge, "40 Mbps")
        best10, _ = best(edge, "10 Mbps")
        assert best40 <= best10
