"""Multi-client serving scalability: aggregate throughput vs client count.

Scales the number of concurrent :class:`DeviceClient` connections against a
single :class:`EdgeServer` (1 -> 8 clients) and reports the aggregate frames
per second the edge sustains.  The edge callable models a fixed per-frame
service time (an accelerator request that parallelizes across streams), so a
single pipelined client is bounded by the serial service chain while
additional clients fill the server's worker pool: aggregate throughput must
grow with the client count until the pool saturates.

Run standalone:  PYTHONPATH=src python benchmarks/bench_multi_client_scaling.py
or via pytest:   PYTHONPATH=src python -m pytest benchmarks/bench_multi_client_scaling.py -q
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Sequence

import numpy as np

from repro.evaluation import format_table
from repro.system import DeviceClient, EdgeServer

CLIENT_COUNTS = (1, 2, 4, 8)
FRAMES_PER_CLIENT = 30
#: Modelled edge service time per frame (accelerator request latency).
SERVICE_TIME_S = 0.005
MAX_WORKERS = 8


def _device_fn(frame):
    return {"x": np.asarray(frame, dtype=np.float64)}, {"scale": 2.0}


def _edge_fn(arrays, meta):
    time.sleep(SERVICE_TIME_S)
    return {"y": arrays["x"] * meta["scale"]}, {"done": True}


def _run_clients(server: EdgeServer, num_clients: int) -> float:
    """Drive ``num_clients`` concurrent pipelines; returns aggregate fps."""
    frames = [np.full((8, 8), i, dtype=float) for i in range(FRAMES_PER_CLIENT)]
    failures: List[BaseException] = []
    barrier = threading.Barrier(num_clients + 1)

    def run_one(index: int) -> None:
        client = DeviceClient(server.host, server.port,
                              client_name=f"bench-{index}")
        try:
            barrier.wait(timeout=30.0)
            results, _ = client.run_pipeline(frames, _device_fn)
            assert len(results) == FRAMES_PER_CLIENT
        except BaseException as exc:
            failures.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=run_one, args=(i,))
               for i in range(num_clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30.0)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=60.0)
    wall = time.perf_counter() - started
    if failures:
        raise RuntimeError(f"{len(failures)} client(s) failed: {failures[0]}")
    return num_clients * FRAMES_PER_CLIENT / wall


def run_scaling(client_counts: Sequence[int] = CLIENT_COUNTS) -> Dict[int, float]:
    """Aggregate throughput (fps) for each client count, one shared server."""
    throughput: Dict[int, float] = {}
    for num_clients in client_counts:
        server = EdgeServer(_edge_fn, max_workers=MAX_WORKERS).start()
        try:
            throughput[num_clients] = _run_clients(server, num_clients)
        finally:
            server.stop()
    return throughput


def scaling_table(throughput: Dict[int, float]) -> str:
    base = throughput[min(throughput)]
    rows = [[clients, fps, fps / base] for clients, fps in sorted(throughput.items())]
    return format_table(["clients", "aggregate_fps", "speedup_vs_1"], rows,
                        title="Multi-client serving scalability "
                              f"({FRAMES_PER_CLIENT} frames/client, "
                              f"{SERVICE_TIME_S * 1000:.0f} ms edge service, "
                              f"{MAX_WORKERS} workers)")


def scaling_json(throughput: Dict[int, float]) -> Dict:
    """Machine-readable twin of :func:`scaling_table`."""
    base = throughput[min(throughput)]
    return {
        "bench": "multi_client_scaling",
        "frames_per_client": FRAMES_PER_CLIENT,
        "service_time_ms": SERVICE_TIME_S * 1000.0,
        "max_workers": MAX_WORKERS,
        "clients": {str(clients): {"aggregate_fps": fps,
                                   "speedup_vs_1": fps / base}
                    for clients, fps in sorted(throughput.items())},
    }


def check_scaling(throughput: Dict[int, float]) -> None:
    """Concurrency must pay: 4 clients clearly out-serve 1 client."""
    assert throughput[4] > 1.8 * throughput[1], (
        f"aggregate throughput did not scale: {throughput}")
    assert throughput[2] > throughput[1]


def test_multi_client_scaling(benchmark):
    throughput = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    from conftest import save_json, save_report
    save_report("multi_client_scaling.txt", scaling_table(throughput))
    save_json("multi_client_scaling.json", scaling_json(throughput))
    check_scaling(throughput)


def main() -> None:
    import os
    import sys
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import save_json, save_report
    throughput = run_scaling()
    save_report("multi_client_scaling.txt", scaling_table(throughput))
    save_json("multi_client_scaling.json", scaling_json(throughput))
    check_scaling(throughput)
    print("\nscaling check passed: 4 clients serve "
          f"{throughput[4] / throughput[1]:.2f}x the frames/s of 1 client")


if __name__ == "__main__":
    main()
